//! The routing tier: accept loop, consistent-hash proxying, health checks,
//! and cross-upstream aggregation.
//!
//! # Request path
//!
//! ```text
//! client ──► router conn thread ──► resolve backend id ──► ring.order(key)
//!                                        │                      │
//!                                        ▼                      ▼
//!                               parse_backend_query     healthy-first walk
//!                                                              │
//!                                              pooled keep-alive proxy ──► upstream
//! ```
//!
//! The routing key is the FNV-1a hash of the request's *resolved backend
//! id*: the router runs the same [`parse_backend_query`] +
//! [`BackendQuery::candidate_ids`](difftune_serve::BackendQuery::candidate_ids)
//! resolution contract as the upstreams (against the union of their
//! advertised backends), so all requests for one table land on one upstream
//! — its shard cache stays hot, and adding upstreams rebalances only the
//! keys consistent hashing says must move.
//!
//! A request whose body does not parse still proxies (under key 0): the
//! upstream is the authority on error bodies, which keeps routed error
//! responses byte-identical to direct ones.
//!
//! # Failover
//!
//! Per upstream, in ring order (healthy upstreams first): try a pooled
//! connection; if the pooled socket fails (idle-timeout or request-cap
//! close races are expected), retry once on a fresh dial; only when the
//! fresh dial also fails is the upstream marked unhealthy, its pool
//! cleared, and the next ring node tried. `502` is returned only when every
//! upstream is unreachable. A background thread re-probes `/healthz` every
//! `health_interval` and refreshes the known-backend union, so a drained or
//! killed upstream leaves rotation within one probe and a recovered one
//! returns.
//!
//! # Rolling restarts
//!
//! `POST /rollout` restarts the fleet one upstream at a time with zero
//! client-visible downtime: quiesce (the upstream leaves the routing
//! rotation but keeps answering in-flight requests), reload (the same
//! strict `POST /reload` a broadcast would send — on refusal the old
//! registry keeps serving), health-verify, and only then return to
//! rotation. The response reports per-upstream progress; the first failure
//! aborts the rollout with every upstream back in rotation and serving.
//!
//! # Request coalescing
//!
//! Identical in-flight `/predict` bodies from different client connections
//! collapse into one upstream call: the first request leads (proxies as
//! usual), followers wait on the leader's singleflight entry and share its
//! response bytes, metered as `difftune_router_coalesced_total`. Safe
//! because upstream bodies are pure functions of the request (invariant
//! #6); followers only share `200`s and re-proxy on anything else, so a
//! leader's transient failure never fans out.
//!
//! # Determinism
//!
//! Which upstream answers never changes *what* it answers: upstream
//! `/predict` bodies are pure functions of `(blocks, backend)`, so routing,
//! failover, coalescing, rollouts, and mid-load kills change latency and
//! placement only. This is determinism invariant #6 (see
//! `docs/ARCHITECTURE.md`), asserted by `tests/router_e2e.rs` and
//! `tests/fleet_e2e.rs`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use difftune_bench::record::fnv1a;
use difftune_serve::client::{ClientResponse, HttpClient};
use difftune_serve::http::{HttpError, HttpLimits, Request, RequestBuffer, Response};
use difftune_serve::server::parse_backend_query;
use serde::Value;

use crate::pool::ConnectionPool;
use crate::ring::HashRing;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1` by default).
    pub addr: String,
    /// Port to bind; `0` picks an ephemeral port (the handle reports it).
    pub port: u16,
    /// The `difftune-serve` upstreams (`host:port`), at least one.
    pub upstreams: Vec<String>,
    /// Virtual nodes per upstream on the hash ring.
    pub vnodes: usize,
    /// HTTP parsing limits for client connections.
    pub limits: HttpLimits,
    /// Idle-connection read timeout for client connections (the
    /// `--idle-timeout` flag, same meaning as on `difftune-serve`).
    pub read_timeout: Duration,
    /// Read timeout on upstream sockets while proxying — the failover
    /// budget for a hung upstream.
    pub upstream_timeout: Duration,
    /// How often the health thread probes `/healthz` and refreshes the
    /// known-backend union.
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1".to_string(),
            port: 0,
            upstreams: Vec::new(),
            vnodes: 64,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(5),
            upstream_timeout: Duration::from_secs(10),
            health_interval: Duration::from_millis(250),
        }
    }
}

/// One in-flight `/predict`'s singleflight entry: the leader fills `slot`
/// and notifies; followers wait and share the bytes.
struct Flight {
    slot: Mutex<Option<(u16, Vec<u8>)>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }
}

/// Shared router state.
struct RouterState {
    ring: HashRing,
    /// Last known upstream health; starts optimistic so early requests try
    /// everyone before the first probe lands.
    healthy: Vec<AtomicBool>,
    /// Administratively quiesced by an in-progress rollout: kept out of the
    /// routing rotation (but still answering in-flight requests) without
    /// being marked unhealthy.
    rolling: Vec<AtomicBool>,
    /// Requests currently proxied to each upstream — the rollout's quiesce
    /// step waits for this to reach zero before reloading.
    in_flight: Vec<AtomicUsize>,
    /// One rollout at a time; a concurrent `POST /rollout` answers `409`.
    rollout_active: AtomicBool,
    pool: ConnectionPool,
    /// Union of backend ids advertised by the upstreams (`GET /backends`),
    /// refreshed by the health thread — the resolution universe for routing.
    known_backends: RwLock<BTreeSet<String>>,
    /// Identical in-flight `/predict` requests, keyed `(ring key, body
    /// fingerprint)` — the singleflight map behind request coalescing.
    flights: Mutex<HashMap<(u64, u64), Arc<Flight>>>,
    upstream_timeout: Duration,
    /// Router-own counters, rendered under `difftune_router_*`.
    requests_total: AtomicU64,
    proxied_total: Vec<AtomicU64>,
    failovers_total: AtomicU64,
    upstream_errors_total: AtomicU64,
    coalesced_total: AtomicU64,
    rollouts_total: AtomicU64,
}

impl RouterState {
    fn healthy_count(&self) -> usize {
        self.healthy
            .iter()
            .filter(|flag| flag.load(Ordering::SeqCst))
            .count()
    }
}

/// A handle to a running router. Dropping the handle shuts it down.
#[derive(Debug)]
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active_connections: Arc<AtomicUsize>,
    read_timeout: Duration,
    acceptor: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections (bounded by the
    /// idle timeout), and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let deadline = Instant::now() + self.read_timeout + Duration::from_secs(1);
        while self.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Binds the listener and spawns the acceptor and health threads.
///
/// # Errors
///
/// An empty upstream list (`InvalidInput`) or I/O errors from binding.
pub fn spawn_router(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.upstreams.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a router needs at least one upstream",
        ));
    }
    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    let addr = listener.local_addr()?;

    let upstream_count = config.upstreams.len();
    let state = Arc::new(RouterState {
        ring: HashRing::new(&config.upstreams, config.vnodes),
        healthy: (0..upstream_count).map(|_| AtomicBool::new(true)).collect(),
        rolling: (0..upstream_count)
            .map(|_| AtomicBool::new(false))
            .collect(),
        in_flight: (0..upstream_count).map(|_| AtomicUsize::new(0)).collect(),
        rollout_active: AtomicBool::new(false),
        pool: ConnectionPool::new(upstream_count),
        known_backends: RwLock::new(BTreeSet::new()),
        flights: Mutex::new(HashMap::new()),
        upstream_timeout: config.upstream_timeout,
        requests_total: AtomicU64::new(0),
        proxied_total: (0..upstream_count).map(|_| AtomicU64::new(0)).collect(),
        failovers_total: AtomicU64::new(0),
        upstream_errors_total: AtomicU64::new(0),
        coalesced_total: AtomicU64::new(0),
        rollouts_total: AtomicU64::new(0),
    });

    let shutdown = Arc::new(AtomicBool::new(false));
    let active_connections = Arc::new(AtomicUsize::new(0));

    let health = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let interval = config.health_interval;
        std::thread::Builder::new()
            .name("difftune-router-health".to_string())
            .spawn(move || health_loop(state, shutdown, interval))?
    };

    let acceptor = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active_connections);
        let limits = config.limits;
        let read_timeout = config.read_timeout;
        std::thread::Builder::new()
            .name("difftune-router-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let state = Arc::clone(&state);
                    let shutdown = Arc::clone(&shutdown);
                    let conn_active = Arc::clone(&active);
                    active.fetch_add(1, Ordering::SeqCst);
                    let spawned = std::thread::Builder::new()
                        .name("difftune-router-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, state, shutdown, limits, read_timeout);
                            conn_active.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })?
    };

    Ok(RouterHandle {
        addr,
        shutdown,
        active_connections,
        read_timeout: config.read_timeout,
        acceptor: Some(acceptor),
        health: Some(health),
    })
}

/// Probes every upstream's `/healthz` and refreshes the known-backend union.
fn health_loop(state: Arc<RouterState>, shutdown: Arc<AtomicBool>, interval: Duration) {
    while !shutdown.load(Ordering::SeqCst) {
        for (index, addr) in state.ring.nodes().iter().enumerate() {
            let probe = HttpClient::connect(addr).and_then(|mut client| {
                client.set_read_timeout(Some(state.upstream_timeout))?;
                let health = client.get("/healthz")?;
                if health.status == 200 {
                    let backends = client.get("/backends")?;
                    Ok(Some(backends))
                } else {
                    // Reachable but draining (503) or broken: out of rotation.
                    Ok(None)
                }
            });
            match probe {
                Ok(Some(backends)) => {
                    state.healthy[index].store(true, Ordering::SeqCst);
                    if let Some(ids) = parse_backend_list(&backends) {
                        let mut known =
                            state.known_backends.write().expect("backend lock poisoned");
                        known.extend(ids);
                    }
                }
                Ok(None) | Err(_) => {
                    state.healthy[index].store(false, Ordering::SeqCst);
                    state.pool.clear(index);
                }
            }
        }
        // Sleep in small steps so shutdown is prompt.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// The backend id inside one `GET /backends` entry: an
/// `{"id": ..., "kind": ..., "fingerprint": ...}` object (the current
/// upstream shape) or a bare id string (older upstreams).
fn backend_entry_id(entry: &Value) -> Option<String> {
    match entry {
        Value::Str(id) => Some(id.clone()),
        other => other
            .as_map()?
            .iter()
            .find(|(key, _)| key == "id")?
            .1
            .as_str()
            .map(String::from),
    }
}

/// Parses a `GET /backends` body (a JSON array of backend entries) into the
/// advertised ids.
fn parse_backend_list(response: &ClientResponse) -> Option<Vec<String>> {
    let value = serde_json::from_str_value(&response.body_text()).ok()?;
    Some(
        value
            .as_seq()?
            .iter()
            .filter_map(backend_entry_id)
            .collect(),
    )
}

/// Reads requests off one client connection until close, error, or shutdown
/// — the same loop shape as the upstream server.
fn handle_connection(
    mut stream: TcpStream,
    state: Arc<RouterState>,
    shutdown: Arc<AtomicBool>,
    limits: HttpLimits,
    read_timeout: Duration,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let mut parser = RequestBuffer::new();
    let mut read_buf = [0u8; 16 * 1024];
    loop {
        loop {
            match parser.next_request(&limits) {
                Ok(Some(request)) => {
                    state.requests_total.fetch_add(1, Ordering::Relaxed);
                    let mut response = route(&request, &state);
                    response.close = response.close || request.wants_close();
                    let close = response.close;
                    if response.write_to(&mut stream).is_err() || close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(error) => {
                    let _ = Response::from_error(&error, true).write_to(&mut stream);
                    return;
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => parser.push(&read_buf[..n]),
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return;
            }
            Err(_) => return,
        }
    }
}

/// Dispatches one parsed request.
fn route(request: &Request, state: &RouterState) -> Response {
    // Versioned aliases: `/v1/<endpoint>` is the same endpoint (the
    // upstreams accept both spellings too, so proxied paths forward
    // verbatim and routed `/v1` responses stay byte-identical to direct
    // ones).
    let path = request
        .path
        .strip_prefix("/v1")
        .filter(|rest| rest.starts_with('/'))
        .unwrap_or(&request.path);
    match (request.method.as_str(), path) {
        ("POST", "/predict") => proxy_predict(request, state),
        ("POST", "/route") => explain_route(request, state),
        ("POST", "/reload") => broadcast_reload(state),
        ("POST", "/rollout") => run_rollout(state),
        ("GET", "/healthz") => health_response(state),
        ("GET", "/backends") => aggregate_backends(state),
        ("GET", "/metrics") => aggregate_metrics(state),
        (_, "/predict" | "/route" | "/reload" | "/rollout") => Response::from_error(
            &HttpError {
                status: 405,
                message: format!("{} only supports POST", request.path),
            },
            false,
        ),
        (_, "/healthz" | "/backends" | "/metrics") => Response::from_error(
            &HttpError {
                status: 405,
                message: format!("{} only supports GET", request.path),
            },
            false,
        ),
        (_, path) => Response::from_error(
            &HttpError {
                status: 404,
                message: format!(
                    "unknown path {path}; router endpoints are POST /predict, POST /route, \
                     POST /reload, POST /rollout, GET /healthz, GET /metrics, GET /backends \
                     (all also under /v1)"
                ),
            },
            false,
        ),
    }
}

/// Resolves a `/predict` body to its routing identity: the backend id the
/// upstreams would resolve (against the known-backend union) and its ring
/// key. Unparsable bodies route under key 0 — the upstream still answers
/// (with the byte-identical error a direct client would get).
fn resolve_routing(body: &[u8], known: &BTreeSet<String>) -> (u64, Option<String>) {
    let Ok(text) = std::str::from_utf8(body) else {
        return (0, None);
    };
    let Ok(value) = serde_json::from_str_value(text) else {
        return (0, None);
    };
    let Some(map) = value.as_map() else {
        return (0, None);
    };
    let Ok(query) = parse_backend_query(map) else {
        return (0, None);
    };
    let candidates = query.candidate_ids();
    let id = candidates
        .iter()
        .find(|id| known.contains(*id))
        .unwrap_or_else(|| candidates.last().expect("candidate_ids is never empty"))
        .clone();
    (fnv1a(id.bytes()), Some(id))
}

/// The failover walk for a key: ring order, with upstreams grouped by
/// availability — in rotation first, then quiesced-by-rollout, then
/// unhealthy. The sort is stable, so relative ring order is preserved
/// within each class and the walk stays deterministic for a given state.
/// A quiesced upstream is only tried when every in-rotation upstream has
/// failed: a rollout never makes the fleet less available than losing the
/// quiesced upstream outright would.
fn failover_order(state: &RouterState, key: u64) -> Vec<usize> {
    let mut order = state.ring.order(key);
    order.sort_by_key(|&index| {
        match (
            state.healthy[index].load(Ordering::SeqCst),
            state.rolling[index].load(Ordering::SeqCst),
        ) {
            (true, false) => 0u8,
            (true, true) => 1,
            (false, _) => 2,
        }
    });
    order
}

/// Proxies one request to one upstream: pooled connection first, one fresh
/// dial on pooled failure (idle-timeout and request-cap closes are normal),
/// checking the connection back in unless the upstream said close. The
/// per-upstream in-flight gauge brackets the attempt so a rollout's quiesce
/// step can wait for traffic to settle.
fn proxy_to(
    state: &RouterState,
    upstream: usize,
    request: &Request,
) -> std::io::Result<ClientResponse> {
    state.in_flight[upstream].fetch_add(1, Ordering::SeqCst);
    let result = proxy_to_inner(state, upstream, request);
    state.in_flight[upstream].fetch_sub(1, Ordering::SeqCst);
    result
}

/// See [`proxy_to`].
fn proxy_to_inner(
    state: &RouterState,
    upstream: usize,
    request: &Request,
) -> std::io::Result<ClientResponse> {
    if let Some(mut client) = state.pool.checkout(upstream) {
        if let Ok(response) = client.request(&request.method, &request.path, &request.body) {
            if !response.wants_close() {
                state.pool.checkin(upstream, client);
            }
            return Ok(response);
        }
        // The pooled socket was stale; fall through to a fresh dial.
    }
    let mut client = HttpClient::connect(&state.ring.nodes()[upstream])?;
    client.set_read_timeout(Some(state.upstream_timeout))?;
    let response = client.request(&request.method, &request.path, &request.body)?;
    if !response.wants_close() {
        state.pool.checkin(upstream, client);
    }
    Ok(response)
}

/// Routes and proxies a `/predict`, coalescing identical in-flight bodies
/// into one upstream call (singleflight) and failing over along the ring.
fn proxy_predict(request: &Request, state: &RouterState) -> Response {
    let (key, _) = {
        let known = state.known_backends.read().expect("backend lock poisoned");
        resolve_routing(&request.body, &known)
    };

    // Singleflight: the first connection in with a given `(routing key,
    // body)` leads and proxies; everyone else arriving while the leader is
    // in flight waits for — and shares — the leader's bytes. Identical
    // bodies have identical responses (invariant #6), so sharing never
    // changes what any client sees, only how many upstream calls are made.
    let flight_key = (key, fnv1a(request.body.iter().copied()));
    let leader = {
        let mut flights = state.flights.lock().expect("flight lock poisoned");
        match flights.get(&flight_key) {
            Some(flight) => Err(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight::new());
                flights.insert(flight_key, Arc::clone(&flight));
                Ok(flight)
            }
        }
    };
    let flight = match leader {
        Ok(flight) => flight,
        Err(flight) => {
            state.coalesced_total.fetch_add(1, Ordering::Relaxed);
            // Generous wait: the leader may walk the whole ring before
            // answering. On timeout (leader thread died) proxy directly.
            let budget = state
                .upstream_timeout
                .saturating_mul(state.ring.len().max(1) as u32)
                + Duration::from_secs(1);
            let deadline = Instant::now() + budget;
            let mut slot = flight.slot.lock().expect("flight slot poisoned");
            while slot.is_none() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _) = flight
                    .done
                    .wait_timeout(slot, deadline - now)
                    .expect("flight slot poisoned");
                slot = next;
            }
            // Followers only share success: a leader's transient failure
            // (e.g. a kill racing the walk) must not fan out to clients
            // that would have succeeded on their own retry.
            if let Some((status, body)) = slot.as_ref().filter(|(status, _)| *status == 200) {
                return Response {
                    status: *status,
                    content_type: "application/json",
                    body: body.clone(),
                    close: false,
                };
            }
            drop(slot);
            return proxy_predict_walk(request, state, key);
        }
    };

    let response = proxy_predict_walk(request, state, key);
    {
        let mut flights = state.flights.lock().expect("flight lock poisoned");
        flights.remove(&flight_key);
    }
    let mut slot = flight.slot.lock().expect("flight slot poisoned");
    *slot = Some((response.status, response.body.clone()));
    flight.done.notify_all();
    drop(slot);
    response
}

/// The failover walk behind [`proxy_predict`]: try each upstream in
/// availability-then-ring order until one answers.
fn proxy_predict_walk(request: &Request, state: &RouterState, key: u64) -> Response {
    for (attempt, upstream) in failover_order(state, key).into_iter().enumerate() {
        match proxy_to(state, upstream, request) {
            Ok(upstream_response) => {
                state.healthy[upstream].store(true, Ordering::SeqCst);
                state.proxied_total[upstream].fetch_add(1, Ordering::Relaxed);
                if attempt > 0 {
                    state.failovers_total.fetch_add(1, Ordering::Relaxed);
                }
                return Response {
                    status: upstream_response.status,
                    content_type: "application/json",
                    body: upstream_response.body,
                    close: false,
                };
            }
            Err(_) => {
                state.upstream_errors_total.fetch_add(1, Ordering::Relaxed);
                state.healthy[upstream].store(false, Ordering::SeqCst);
                state.pool.clear(upstream);
            }
        }
    }
    Response::from_error(
        &HttpError {
            status: 502,
            message: format!(
                "no upstream reachable (tried all {} in ring order)",
                state.ring.len()
            ),
        },
        false,
    )
}

/// `POST /route` — the routing decision for a `/predict`-shaped body,
/// without proxying. Debug/ops surface; `difftune-loadtest
/// --kill-upstream-after` uses it to find a request's primary upstream.
fn explain_route(request: &Request, state: &RouterState) -> Response {
    let (key, backend) = {
        let known = state.known_backends.read().expect("backend lock poisoned");
        resolve_routing(&request.body, &known)
    };
    let order = failover_order(state, key);
    let nodes = state.ring.nodes();
    let body = serde_json::to_string(&Value::Map(vec![
        ("key".to_string(), Value::Str(format!("{key:#018x}"))),
        (
            "backend".to_string(),
            backend.map(Value::Str).unwrap_or(Value::Null),
        ),
        (
            "primary".to_string(),
            order
                .first()
                .map(|&index| Value::Str(nodes[index].clone()))
                .unwrap_or(Value::Null),
        ),
        (
            "order".to_string(),
            Value::Seq(
                order
                    .iter()
                    .map(|&index| Value::Str(nodes[index].clone()))
                    .collect(),
            ),
        ),
        (
            "healthy".to_string(),
            Value::Seq(
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(index, _)| state.healthy[*index].load(Ordering::SeqCst))
                    .map(|(_, addr)| Value::Str(addr.clone()))
                    .collect(),
            ),
        ),
    ]))
    .expect("route body serializes");
    Response::json(200, body)
}

/// `POST /reload` — forwards the reload to every upstream and reports each
/// outcome. `200` only when every upstream accepted; any refusal or
/// unreachable upstream turns the aggregate into `502` (individual results
/// are still listed).
fn broadcast_reload(state: &RouterState) -> Response {
    let reload = Request {
        method: "POST".to_string(),
        path: "/reload".to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let mut results = Vec::new();
    let mut all_ok = true;
    for (index, addr) in state.ring.nodes().iter().enumerate() {
        let outcome = match proxy_to(state, index, &reload) {
            Ok(response) => {
                all_ok &= response.status == 200;
                Value::Map(vec![
                    ("status".to_string(), Value::Int(response.status as i128)),
                    (
                        "body".to_string(),
                        serde_json::from_str_value(&response.body_text())
                            .unwrap_or(Value::Str(response.body_text())),
                    ),
                ])
            }
            Err(error) => {
                all_ok = false;
                state.healthy[index].store(false, Ordering::SeqCst);
                state.pool.clear(index);
                Value::Map(vec![(
                    "error".to_string(),
                    Value::Str(format!("unreachable: {error}")),
                )])
            }
        };
        results.push((addr.clone(), outcome));
    }
    let body = serde_json::to_string(&Value::Map(vec![
        (
            "status".to_string(),
            Value::Str(if all_ok { "reloaded" } else { "partial" }.to_string()),
        ),
        ("upstreams".to_string(), Value::Map(results)),
    ]))
    .expect("reload body serializes");
    Response::json(if all_ok { 200 } else { 502 }, body)
}

/// Polls one upstream's in-flight gauge down to zero, bounded by the
/// upstream timeout. Returns whether traffic fully settled — a timeout is
/// recorded but not fatal, because `/reload` swaps the registry atomically
/// and requests racing the swap answer canonical bytes either way.
fn wait_for_quiesce(state: &RouterState, upstream: usize) -> bool {
    let deadline = Instant::now() + state.upstream_timeout;
    while Instant::now() < deadline {
        if state.in_flight[upstream].load(Ordering::SeqCst) == 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    state.in_flight[upstream].load(Ordering::SeqCst) == 0
}

/// Probes one upstream's `/healthz` on fresh dials until it answers `200`,
/// bounded by the upstream timeout.
fn verify_upstream_health(state: &RouterState, upstream: usize) -> bool {
    let addr = &state.ring.nodes()[upstream];
    let deadline = Instant::now() + state.upstream_timeout;
    loop {
        let probe = HttpClient::connect(addr).and_then(|mut client| {
            client.set_read_timeout(Some(state.upstream_timeout))?;
            client.get("/healthz")
        });
        if probe.is_ok_and(|response| response.status == 200) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// `POST /rollout` — rolling restart: quiesce, reload, health-verify, and
/// return each upstream to rotation, one at a time, in configured order.
///
/// Per upstream the steps are:
///
/// 1. **quiesce** — the upstream leaves the routing rotation (new
///    `/predict`s avoid it; it still answers in-flight requests) and the
///    router waits for its in-flight gauge to settle;
/// 2. **reload** — the same strict `POST /reload` a broadcast would send;
///    a refusal (`409`) keeps the old registry serving;
/// 3. **verify** — fresh-dial `/healthz` probes until `200`;
/// 4. **return** — back into rotation.
///
/// The first failure aborts the rollout: the failing upstream goes straight
/// back into rotation (a refused reload keeps serving the old registry;
/// an unreachable upstream is left to the health loop), remaining upstreams
/// are reported `skipped`, and the response is `502` with per-upstream
/// detail. Upstreams already out of rotation are skipped, not failed — a
/// dead process has nothing to quiesce and a rollout after a kill must
/// still restart the survivors. Only one rollout runs at a time; a
/// concurrent `POST /rollout` answers `409`.
fn run_rollout(state: &RouterState) -> Response {
    if state.rollout_active.swap(true, Ordering::SeqCst) {
        return Response::from_error(
            &HttpError {
                status: 409,
                message: "a rollout is already in progress".to_string(),
            },
            false,
        );
    }
    state.rollouts_total.fetch_add(1, Ordering::Relaxed);

    let reload = Request {
        method: "POST".to_string(),
        path: "/reload".to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let mut upstreams: Vec<(String, Value)> = Vec::new();
    let mut abort: Option<String> = None;
    for (index, addr) in state.ring.nodes().iter().enumerate() {
        if let Some(reason) = &abort {
            upstreams.push((
                addr.clone(),
                Value::Map(vec![
                    ("status".to_string(), Value::Str("skipped".to_string())),
                    (
                        "detail".to_string(),
                        Value::Str(format!("rollout aborted at {reason}")),
                    ),
                ]),
            ));
            continue;
        }
        if !state.healthy[index].load(Ordering::SeqCst) {
            upstreams.push((
                addr.clone(),
                Value::Map(vec![
                    ("status".to_string(), Value::Str("skipped".to_string())),
                    (
                        "detail".to_string(),
                        Value::Str("out of rotation (unhealthy); nothing to quiesce".to_string()),
                    ),
                ]),
            ));
            continue;
        }

        let mut steps: Vec<Value> = Vec::new();
        state.rolling[index].store(true, Ordering::SeqCst);
        steps.push(Value::Str(
            if wait_for_quiesce(state, index) {
                "quiesced"
            } else {
                "quiesced (in-flight settle timed out; reload swaps atomically)"
            }
            .to_string(),
        ));

        let failure = match proxy_to(state, index, &reload) {
            Ok(response) if response.status == 200 => {
                steps.push(Value::Str("reloaded".to_string()));
                if verify_upstream_health(state, index) {
                    steps.push(Value::Str("verified".to_string()));
                    None
                } else {
                    Some(format!(
                        "reloaded but /healthz did not answer 200 within {:?}",
                        state.upstream_timeout
                    ))
                }
            }
            Ok(response) => Some(format!(
                "reload refused with {}: {}",
                response.status,
                response.body_text()
            )),
            Err(error) => {
                state.healthy[index].store(false, Ordering::SeqCst);
                state.pool.clear(index);
                Some(format!("reload unreachable: {error}"))
            }
        };

        // Back into rotation either way: on success the upstream is
        // verified; on failure the old registry is still serving (a refused
        // reload never swaps) and an unreachable upstream is out of the
        // healthy set already — the fleet keeps serving in both cases.
        state.rolling[index].store(false, Ordering::SeqCst);
        match failure {
            None => {
                state.healthy[index].store(true, Ordering::SeqCst);
                upstreams.push((
                    addr.clone(),
                    Value::Map(vec![
                        ("status".to_string(), Value::Str("ok".to_string())),
                        ("steps".to_string(), Value::Seq(steps)),
                    ]),
                ));
            }
            Some(error) => {
                upstreams.push((
                    addr.clone(),
                    Value::Map(vec![
                        ("status".to_string(), Value::Str("failed".to_string())),
                        ("steps".to_string(), Value::Seq(steps)),
                        ("error".to_string(), Value::Str(error)),
                    ]),
                ));
                abort = Some(addr.clone());
            }
        }
    }
    state.rollout_active.store(false, Ordering::SeqCst);

    let completed = abort.is_none();
    let body = serde_json::to_string(&Value::Map(vec![
        (
            "status".to_string(),
            Value::Str(if completed { "completed" } else { "aborted" }.to_string()),
        ),
        ("upstreams".to_string(), Value::Map(upstreams)),
    ]))
    .expect("rollout body serializes");
    Response::json(if completed { 200 } else { 502 }, body)
}

/// `GET /healthz` — `200` while at least one upstream is in rotation.
fn health_response(state: &RouterState) -> Response {
    let healthy = state.healthy_count();
    Response::json(
        if healthy > 0 { 200 } else { 503 },
        serde_json::to_string(&Value::Map(vec![
            (
                "status".to_string(),
                Value::Str(if healthy > 0 { "ok" } else { "unavailable" }.to_string()),
            ),
            (
                "upstreams".to_string(),
                Value::Int(state.ring.len() as i128),
            ),
            ("healthy".to_string(), Value::Int(healthy as i128)),
        ]))
        .expect("health body serializes"),
    )
}

/// `GET /backends` — the live union of every reachable upstream's backend
/// list (also folded into the routing universe), id-sorted. Entries keep
/// the upstream shape (`{id, kind, fingerprint}` objects), so a
/// single-upstream router answers byte-identically to the upstream itself.
fn aggregate_backends(state: &RouterState) -> Response {
    let list = Request {
        method: "GET".to_string(),
        path: "/backends".to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let mut union: BTreeMap<String, Value> = BTreeMap::new();
    for index in 0..state.ring.len() {
        let Ok(response) = proxy_to(state, index, &list) else {
            continue;
        };
        let Ok(value) = serde_json::from_str_value(&response.body_text()) else {
            continue;
        };
        let Some(entries) = value.as_seq() else {
            continue;
        };
        for entry in entries {
            if let Some(id) = backend_entry_id(entry) {
                union.entry(id).or_insert_with(|| entry.clone());
            }
        }
    }
    {
        let mut known = state.known_backends.write().expect("backend lock poisoned");
        known.extend(union.keys().cloned());
    }
    Response::json(
        200,
        serde_json::to_string(&Value::Seq(union.into_values().collect()))
            .expect("backend union serializes"),
    )
}

/// One aggregated sample: whether every contribution parsed as an integer
/// (rendered without a decimal point, like the upstream text), and the sums.
struct SampleSum {
    integral: bool,
    int_sum: i128,
    float_sum: f64,
}

/// Canonicalizes one sample's series (`name{labels}`) by sorting its
/// `key="value"` label pairs, so two upstreams exposing the same series with
/// labels in different orders merge into one sum instead of two lines.
/// Splitting is quote-aware: commas inside label values never split a pair.
/// Series that are not well-formed (`name{...}` with a closing brace) pass
/// through unchanged — aggregation keys on whatever the upstream wrote.
fn normalize_series(series: &str) -> String {
    let Some(open) = series.find('{') else {
        return series.to_string();
    };
    let Some(close) = series.rfind('}') else {
        return series.to_string();
    };
    if close < open {
        return series.to_string();
    }
    let labels = &series[open + 1..close];
    let mut pairs: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in labels.chars() {
        match c {
            '\\' if in_quotes && !escaped => {
                escaped = true;
                current.push(c);
            }
            '"' if !escaped => {
                in_quotes = !in_quotes;
                current.push(c);
                escaped = false;
            }
            ',' if !in_quotes => {
                pairs.push(current.trim().to_string());
                current.clear();
                escaped = false;
            }
            _ => {
                current.push(c);
                escaped = false;
            }
        }
    }
    if !current.trim().is_empty() {
        pairs.push(current.trim().to_string());
    }
    pairs.sort();
    format!(
        "{}{{{}}}{}",
        &series[..open],
        pairs.join(","),
        &series[close + 1..]
    )
}

/// `GET /metrics` — sums every upstream sample sharing a series identity
/// (name plus its label *set* — label order is normalized before merging,
/// see [`normalize_series`]), then appends the router's own
/// `difftune_router_*` series. HELP/TYPE headers from upstreams are dropped
/// (samples alone are valid exposition text) to avoid re-grouping families.
fn aggregate_metrics(state: &RouterState) -> Response {
    let scrape = Request {
        method: "GET".to_string(),
        path: "/metrics".to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let mut order: Vec<String> = Vec::new();
    let mut sums: BTreeMap<String, SampleSum> = BTreeMap::new();
    for index in 0..state.ring.len() {
        let Ok(response) = proxy_to(state, index, &scrape) else {
            continue;
        };
        for line in response.body_text().lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((series, raw_value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = raw_value.parse::<f64>() else {
                continue;
            };
            let integral = !raw_value.contains(['.', 'e', 'E']);
            let series = normalize_series(series);
            let entry = sums.entry(series.clone()).or_insert_with(|| {
                order.push(series.clone());
                SampleSum {
                    integral: true,
                    int_sum: 0,
                    float_sum: 0.0,
                }
            });
            entry.integral &= integral;
            entry.int_sum += raw_value.parse::<i128>().unwrap_or(0);
            entry.float_sum += value;
        }
    }

    let mut out = String::new();
    for series in &order {
        let sum = &sums[series];
        if sum.integral {
            out.push_str(&format!("{series} {}\n", sum.int_sum));
        } else {
            out.push_str(&format!("{series} {:?}\n", sum.float_sum));
        }
    }

    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP difftune_router_{name} {help}\n# TYPE difftune_router_{name} counter\n\
             difftune_router_{name} {value}\n"
        ));
    };
    counter(
        "requests_total",
        "Requests parsed by the router.",
        state.requests_total.load(Ordering::Relaxed),
    );
    counter(
        "failovers_total",
        "Requests answered by a non-primary upstream.",
        state.failovers_total.load(Ordering::Relaxed),
    );
    counter(
        "upstream_errors_total",
        "Upstream attempts that failed outright.",
        state.upstream_errors_total.load(Ordering::Relaxed),
    );
    counter(
        "coalesced_total",
        "Predict requests that shared another connection's in-flight upstream call.",
        state.coalesced_total.load(Ordering::Relaxed),
    );
    counter(
        "rollouts_total",
        "Rolling restarts started via POST /rollout.",
        state.rollouts_total.load(Ordering::Relaxed),
    );
    out.push_str(
        "# HELP difftune_router_proxied_total Requests proxied, by upstream.\n\
         # TYPE difftune_router_proxied_total counter\n",
    );
    for (index, addr) in state.ring.nodes().iter().enumerate() {
        out.push_str(&format!(
            "difftune_router_proxied_total{{upstream=\"{addr}\"}} {}\n",
            state.proxied_total[index].load(Ordering::Relaxed)
        ));
    }
    out.push_str(&format!(
        "# HELP difftune_router_upstreams Configured upstreams.\n\
         # TYPE difftune_router_upstreams gauge\ndifftune_router_upstreams {}\n",
        state.ring.len()
    ));
    out.push_str(&format!(
        "# HELP difftune_router_healthy_upstreams Upstreams in rotation.\n\
         # TYPE difftune_router_healthy_upstreams gauge\ndifftune_router_healthy_upstreams {}\n",
        state.healthy_count()
    ));
    Response::text(200, out)
}

#[cfg(test)]
mod tests {
    use super::normalize_series;

    #[test]
    fn label_order_never_splits_a_series() {
        let a = r#"difftune_policy_tier_total{tier="surrogate",cell="mca:haswell:llvm_mca"}"#;
        let b = r#"difftune_policy_tier_total{cell="mca:haswell:llvm_mca",tier="surrogate"}"#;
        assert_eq!(normalize_series(a), normalize_series(b));
        assert_eq!(
            normalize_series(a),
            r#"difftune_policy_tier_total{cell="mca:haswell:llvm_mca",tier="surrogate"}"#
        );
    }

    #[test]
    fn quoted_commas_and_braces_stay_inside_their_label_value() {
        let tricky = r#"m{b="x,y",a="p{q}r"}"#;
        assert_eq!(normalize_series(tricky), r#"m{a="p{q}r",b="x,y"}"#);
        let shuffled = r#"m{a="p{q}r",b="x,y"}"#;
        assert_eq!(normalize_series(shuffled), normalize_series(tricky));
    }

    #[test]
    fn escaped_quotes_do_not_end_a_value() {
        let escaped = r#"m{b="say \"hi\", friend",a="1"}"#;
        assert_eq!(
            normalize_series(escaped),
            r#"m{a="1",b="say \"hi\", friend"}"#
        );
    }

    #[test]
    fn unlabeled_and_malformed_series_pass_through() {
        assert_eq!(normalize_series("plain_total"), "plain_total");
        assert_eq!(normalize_series("broken{oops"), "broken{oops");
        assert_eq!(normalize_series("m{}"), "m{}");
    }
}
