//! `difftune-router` — the routing-tier binary.
//!
//! Fronts N `difftune-serve` upstreams with consistent-hash routing,
//! health-checked failover, and cross-upstream aggregation of `/metrics`
//! and `/backends`.
//!
//! ```text
//! difftune-router --upstream HOST:PORT [--upstream HOST:PORT]...
//!                 [--addr A] [--port P] [--vnodes N]
//!                 [--idle-timeout S] [--upstream-timeout S]
//!                 [--health-interval S] [--max-seconds S]
//! ```

use std::time::Duration;

use difftune_router::server::{spawn_router, RouterConfig};

struct Args {
    addr: String,
    port: u16,
    upstreams: Vec<String>,
    vnodes: usize,
    idle_timeout: Option<f64>,
    upstream_timeout: Option<f64>,
    health_interval: Option<f64>,
    max_seconds: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: difftune-router --upstream HOST:PORT [--upstream HOST:PORT]... [--addr A] \
         [--port P] [--vnodes N] [--idle-timeout S] [--upstream-timeout S] \
         [--health-interval S] [--max-seconds S]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1".to_string(),
        port: 8116,
        upstreams: Vec::new(),
        vnodes: 64,
        idle_timeout: None,
        upstream_timeout: None,
        health_interval: None,
        max_seconds: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                usage()
            })
        };
        let seconds = |flag: &str, raw: String| -> f64 {
            let parsed: f64 = raw.parse().unwrap_or_else(|_| {
                eprintln!("{flag} must be numeric seconds, got {raw:?}");
                usage()
            });
            if parsed <= 0.0 || parsed.is_nan() {
                eprintln!("{flag} must be positive, got {raw:?}");
                usage()
            }
            parsed
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--port" => {
                let raw = value("--port");
                args.port = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--port must be a port number, got {raw:?}");
                    usage()
                });
            }
            "--upstream" => args.upstreams.push(value("--upstream")),
            "--vnodes" => {
                let raw = value("--vnodes");
                args.vnodes = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--vnodes must be an unsigned integer, got {raw:?}");
                    usage()
                });
            }
            "--idle-timeout" => {
                let raw = value("--idle-timeout");
                args.idle_timeout = Some(seconds("--idle-timeout", raw));
            }
            "--upstream-timeout" => {
                let raw = value("--upstream-timeout");
                args.upstream_timeout = Some(seconds("--upstream-timeout", raw));
            }
            "--health-interval" => {
                let raw = value("--health-interval");
                args.health_interval = Some(seconds("--health-interval", raw));
            }
            "--max-seconds" => {
                let raw = value("--max-seconds");
                args.max_seconds = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--max-seconds must be numeric, got {raw:?}");
                    usage()
                }));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if args.upstreams.is_empty() {
        eprintln!("difftune-router: at least one --upstream is required");
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let defaults = RouterConfig::default();
    let config = RouterConfig {
        addr: args.addr.clone(),
        port: args.port,
        upstreams: args.upstreams.clone(),
        vnodes: args.vnodes,
        read_timeout: args
            .idle_timeout
            .map(Duration::from_secs_f64)
            .unwrap_or(defaults.read_timeout),
        upstream_timeout: args
            .upstream_timeout
            .map(Duration::from_secs_f64)
            .unwrap_or(defaults.upstream_timeout),
        health_interval: args
            .health_interval
            .map(Duration::from_secs_f64)
            .unwrap_or(defaults.health_interval),
        ..defaults
    };
    let handle = spawn_router(config).unwrap_or_else(|error| {
        eprintln!(
            "difftune-router: cannot start on {}:{}: {error}",
            args.addr, args.port
        );
        std::process::exit(1);
    });
    println!(
        "difftune-router listening on http://{} ({} upstreams)",
        handle.addr(),
        args.upstreams.len()
    );

    match args.max_seconds {
        Some(seconds) => {
            std::thread::sleep(Duration::from_secs_f64(seconds.max(0.0)));
            eprintln!("[difftune-router] --max-seconds reached; shutting down");
            handle.shutdown();
        }
        None => loop {
            std::thread::park();
        },
    }
}
