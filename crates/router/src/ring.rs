//! The consistent-hash ring mapping backend fingerprints onto upstreams.
//!
//! Classic Karger-style consistent hashing with virtual nodes: every
//! upstream contributes `vnodes` points, each the FNV-1a hash of
//! `"<address>#<replica>"`. A request key routes to the first point
//! clockwise from it; walking on past that point yields the *failover
//! order* — the distinct upstreams in the order a router should try them.
//!
//! Two properties matter here and are tested below:
//!
//! * **Stability** — points are derived from the upstream's *address
//!   string*, not its index in the configuration, so removing one upstream
//!   moves only the keys that mapped to it; every other key keeps both its
//!   primary and its relative failover order.
//! * **Determinism** — the ring is a pure function of `(addresses, vnodes)`.
//!   Two router processes configured alike route every key identically,
//!   which is what lets the kill-an-upstream replay in `tests/router_e2e.rs`
//!   assert byte-identical responses.

use difftune_bench::record::fnv1a;

/// A consistent-hash ring over upstream addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// The upstream addresses, in configuration order (index = node id).
    nodes: Vec<String>,
    /// Ring points: `(hash, node index)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring. `vnodes` is clamped to at least 1; more virtual
    /// nodes smooth the load split at the cost of a larger (static) table.
    pub fn new(nodes: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (index, node) in nodes.iter().enumerate() {
            for replica in 0..vnodes {
                let hash = fnv1a(format!("{node}#{replica}").bytes());
                points.push((hash, index));
            }
        }
        // Sort by hash; break (astronomically unlikely) hash ties by node
        // index so the ring is a total order and routing is deterministic.
        points.sort_unstable();
        HashRing {
            nodes: nodes.to_vec(),
            points,
        }
    }

    /// The upstream addresses, in configuration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of upstreams.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no upstreams.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The full failover order for a key: every upstream exactly once,
    /// starting at the key's primary and continuing clockwise around the
    /// ring. Empty only when the ring is empty.
    pub fn order(&self, key: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        // First point at or after the key, wrapping at the top.
        let start = self
            .points
            .partition_point(|&(hash, _)| hash < key)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut seen = vec![false; self.nodes.len()];
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            if !seen[node] {
                seen[node] = true;
                order.push(node);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }

    /// The key's primary upstream, if any.
    pub fn primary(&self, key: u64) -> Option<usize> {
        self.order(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_node() {
        let ring = HashRing::new(&addrs(4), 64);
        for key in [0u64, 1, 42, u64::MAX, fnv1a("matrix:mca".bytes())] {
            let order = ring.order(key);
            assert_eq!(order.len(), 4, "every node appears in the failover order");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "each node exactly once");
            assert_eq!(ring.order(key), order, "same key, same order");
            assert_eq!(ring.primary(key), Some(order[0]));
        }
    }

    #[test]
    fn identically_configured_rings_agree() {
        let a = HashRing::new(&addrs(3), 64);
        let b = HashRing::new(&addrs(3), 64);
        for key in 0..1000u64 {
            assert_eq!(a.order(key * 7919), b.order(key * 7919));
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        let all = addrs(4);
        let full = HashRing::new(&all, 64);
        // Drop the last node; the survivors keep their config indices.
        let survivors = HashRing::new(&all[..3], 64);
        let mut moved = 0usize;
        let total = 4096usize;
        for i in 0..total {
            let key = fnv1a(format!("key-{i}").bytes());
            let before = full.primary(key).unwrap();
            let after = survivors.primary(key).unwrap();
            if before == 3 {
                moved += 1;
                // Orphaned keys land on their old *second* choice — failover
                // order is what consistent hashing preserves.
                let fallback = full.order(key)[1];
                assert_eq!(after, fallback, "key {i} skipped its failover");
            } else {
                assert_eq!(before, after, "key {i} moved although its node survived");
            }
        }
        assert!(moved > 0, "some keys must have mapped to the removed node");
        assert!(
            moved < total / 2,
            "only the removed node's share may move (moved {moved}/{total})"
        );
    }

    #[test]
    fn virtual_nodes_balance_the_load_roughly_evenly() {
        let ring = HashRing::new(&addrs(4), 128);
        let mut counts = [0usize; 4];
        let total = 8192usize;
        for i in 0..total {
            counts[ring.primary(fnv1a(format!("block-{i}").bytes())).unwrap()] += 1;
        }
        for (node, &count) in counts.iter().enumerate() {
            let share = count as f64 / total as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "node {node} holds {share:.3} of the keyspace: {counts:?}"
            );
        }
    }

    #[test]
    fn an_empty_ring_routes_nowhere() {
        let ring = HashRing::new(&[], 64);
        assert!(ring.is_empty());
        assert_eq!(ring.order(123), Vec::<usize>::new());
        assert_eq!(ring.primary(123), None);
    }

    // Property-test the unit-test claims above across ring shapes: the
    // failover order is always a permutation of the live nodes, removing a
    // node never reorders the survivors, and key movement is bounded by
    // (roughly) the removed node's share of the keyspace.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 48,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// `order(key)` contains every node exactly once, starts at the
        /// primary, and is a pure function of `(addresses, vnodes, key)`.
        #[test]
        fn order_is_a_permutation_of_the_nodes(
            nodes in 1usize..9,
            vnodes in 1usize..96,
            key in 0u64..u64::MAX,
        ) {
            let ring = HashRing::new(&addrs(nodes), vnodes);
            let order = ring.order(key);
            proptest::prop_assert_eq!(order.len(), nodes);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            proptest::prop_assert_eq!(sorted, (0..nodes).collect::<Vec<_>>());
            proptest::prop_assert_eq!(ring.primary(key), Some(order[0]));
            let again = HashRing::new(&addrs(nodes), vnodes);
            proptest::prop_assert_eq!(again.order(key), order);
        }

        /// Dropping the last node deletes exactly its points: the
        /// survivors' relative failover order for every key is the full
        /// ring's order with the removed node filtered out — no survivor
        /// ever moves relative to another.
        #[test]
        fn removing_a_node_never_reorders_the_survivors(
            nodes in 2usize..9,
            vnodes in 1usize..64,
            key in 0u64..u64::MAX,
        ) {
            let all = addrs(nodes);
            let full = HashRing::new(&all, vnodes);
            let survivors = HashRing::new(&all[..nodes - 1], vnodes);
            let removed = nodes - 1;
            let filtered: Vec<usize> = full
                .order(key)
                .into_iter()
                .filter(|&node| node != removed)
                .collect();
            proptest::prop_assert_eq!(survivors.order(key), filtered);
        }

        /// A removed node's keys land on their old second choice, and only
        /// its (vnode-balanced) share of the keyspace moves.
        #[test]
        fn key_movement_is_bounded_by_the_removed_share(
            nodes in 2usize..7,
            seed in 0u64..10_000,
        ) {
            let all = addrs(nodes);
            let full = HashRing::new(&all, 64);
            let survivors = HashRing::new(&all[..nodes - 1], 64);
            let removed = nodes - 1;
            let total = 512usize;
            let mut moved = 0usize;
            for i in 0..total {
                let key = fnv1a(format!("key-{seed}-{i}").bytes());
                let before = full.primary(key).unwrap();
                let after = survivors.primary(key).unwrap();
                if before == removed {
                    moved += 1;
                    proptest::prop_assert_eq!(after, full.order(key)[1]);
                } else {
                    proptest::prop_assert_eq!(after, before);
                }
            }
            // The removed node held ~1/nodes of the keyspace; allow 3x the
            // fair share as the vnode-imbalance envelope.
            proptest::prop_assert!(
                moved <= total * 3 / nodes,
                "moved {moved}/{total} keys from a ring of {nodes}"
            );
        }
    }
}
