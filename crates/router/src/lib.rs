//! # difftune-router
//!
//! A consistent-hash routing tier fronting N `difftune-serve` upstreams —
//! the multi-process serving story for the DiffTune reproduction.
//!
//! One `difftune-serve` process shards predictions across threads; this
//! crate shards *processes*: each `/predict` request's resolved backend id
//! hashes onto a [`ring::HashRing`] of upstreams (virtual nodes for
//! balance), so one learned table's traffic — and therefore its prediction
//! cache — concentrates on one upstream. Proxying runs over pooled
//! keep-alive connections ([`pool::ConnectionPool`]), a health thread keeps
//! dead or draining upstreams out of rotation, and failed attempts fail
//! over along the ring.
//!
//! * [`ring`] — the consistent-hash ring (stable, deterministic failover
//!   order);
//! * [`pool`] — per-upstream keep-alive connection pooling;
//! * [`server`] — accept loop, proxying, request coalescing, health checks,
//!   `/metrics` and `/backends` aggregation, `/reload` broadcast, the
//!   `POST /rollout` rolling-restart orchestrator, and the `/route` debug
//!   endpoint.
//!
//! The `difftune-router` binary wraps [`server::spawn_router`].
//!
//! Because the ring is a pure function of `(upstream addresses, vnodes)`,
//! N routers configured alike agree on every routing decision with no
//! coordination: fleets deploy as shared-nothing router replicas over the
//! same upstream set (see `docs/ARCHITECTURE.md`, "Fleet deployment").
//!
//! # Determinism
//!
//! Routing changes *where* a request is answered, never *what* the answer
//! is: upstream `/predict` bodies are pure functions of `(blocks, backend)`
//! and the router forwards bodies byte-for-byte in both directions. Killing
//! an upstream mid-load, failing over, coalescing identical in-flight
//! requests, rolling restarts, and hot-reloading identical artifacts all
//! leave the response stream byte-identical to a direct `difftune-serve` —
//! determinism invariant #6, asserted end-to-end by `tests/router_e2e.rs`
//! and `tests/fleet_e2e.rs`, and exercised in CI by
//! `difftune-loadtest --via-router --kill-upstream-after N` plus the
//! `--chaos` fault schedules.
//!
//! # Example
//!
//! ```no_run
//! use difftune_router::server::{spawn_router, RouterConfig};
//!
//! let handle = spawn_router(RouterConfig {
//!     upstreams: vec!["127.0.0.1:8117".to_string(), "127.0.0.1:8118".to_string()],
//!     ..RouterConfig::default()
//! })?;
//! println!("routing on http://{}", handle.addr());
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pool;
pub mod ring;
pub mod server;

pub use pool::ConnectionPool;
pub use ring::HashRing;
pub use server::{spawn_router, RouterConfig, RouterHandle};
