//! Basic blocks: straight-line instruction sequences.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::parse::ParseError;
use crate::registry::OpcodeId;
use crate::Inst;

/// A basic block: a straight-line sequence of instructions with no branches,
/// jumps, or loops, matching the unit of measurement in BHive and the unit of
/// simulation in llvm-mca.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicBlock {
    insts: Vec<Inst>,
}

impl BasicBlock {
    /// Creates an empty basic block.
    pub fn new() -> Self {
        BasicBlock { insts: Vec::new() }
    }

    /// Creates a basic block from a list of instructions.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        BasicBlock { insts }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// The instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// The distinct opcode ids used by this block, in first-use order.
    pub fn opcodes_used(&self) -> Vec<OpcodeId> {
        let mut seen = Vec::new();
        for inst in &self.insts {
            if !seen.contains(&inst.opcode()) {
                seen.push(inst.opcode());
            }
        }
        seen
    }

    /// Number of instructions that read from memory.
    pub fn num_loads(&self) -> usize {
        self.insts.iter().filter(|i| i.loads()).count()
    }

    /// Number of instructions that write to memory.
    pub fn num_stores(&self) -> usize {
        self.insts.iter().filter(|i| i.stores()).count()
    }

    /// Number of instructions whose class executes on the vector side.
    pub fn num_vector_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.class().is_vector()).count()
    }
}

impl FromIterator<Inst> for BasicBlock {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> Self {
        BasicBlock {
            insts: iter.into_iter().collect(),
        }
    }
}

impl Extend<Inst> for BasicBlock {
    fn extend<T: IntoIterator<Item = Inst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl IntoIterator for BasicBlock {
    type Item = Inst;
    type IntoIter = std::vec::IntoIter<Inst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.into_iter()
    }
}

impl<'a> IntoIterator for &'a BasicBlock {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{inst}")?;
        }
        Ok(())
    }
}

impl FromStr for BasicBlock {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_block(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips_through_text() {
        let text = "pushq %rbx\ntestl %r8d, %r8d";
        let block: BasicBlock = text.parse().unwrap();
        assert_eq!(block.len(), 2);
        assert_eq!(block.to_string(), text);
    }

    #[test]
    fn counting_helpers() {
        let block: BasicBlock =
            "movq (%rdi), %rax\naddq %rax, %rbx\nmovq %rbx, 8(%rdi)\naddsd %xmm1, %xmm0"
                .parse()
                .unwrap();
        assert_eq!(block.num_loads(), 1);
        assert_eq!(block.num_stores(), 1);
        assert_eq!(block.num_vector_insts(), 1);
        assert_eq!(block.opcodes_used().len(), 4);
    }

    #[test]
    fn collects_from_iterator() {
        let source: BasicBlock = "incq %rax\nincq %rax".parse().unwrap();
        let collected: BasicBlock = source.iter().cloned().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected.opcodes_used().len(), 1);
    }

    #[test]
    fn empty_block_properties() {
        let block = BasicBlock::new();
        assert!(block.is_empty());
        assert_eq!(block.to_string(), "");
        assert_eq!(block.num_loads(), 0);
    }
}
