//! # difftune-isa
//!
//! A self-contained model of the x86-64 subset that the DiffTune reproduction
//! operates on: registers, operands, opcodes (named in LLVM's `ADD32mr` style),
//! instructions with read/write/load/store semantics, basic blocks, an AT&T-syntax
//! parser and printer, and a random block generator.
//!
//! Every other crate in the workspace builds on these types: the simulators in
//! `difftune-sim` and `difftune-cpu` interpret [`BasicBlock`]s, the surrogate in
//! `difftune-surrogate` tokenizes them, and the dataset in `difftune-bhive`
//! generates them.
//!
//! # Example
//!
//! ```
//! use difftune_isa::{BasicBlock, OpcodeRegistry};
//!
//! let registry = OpcodeRegistry::full();
//! let block: BasicBlock = "pushq %rbx\ntestl %r8d, %r8d".parse()?;
//! assert_eq!(block.len(), 2);
//! let push = &block.insts()[0];
//! assert_eq!(registry.info(push.opcode()).name(), "PUSH64r");
//! assert!(push.stores());
//! # Ok::<(), difftune_isa::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod generate;
mod inst;
mod mnemonic;
mod opcode;
mod operand;
mod parse;
mod reg;
mod registry;

pub use block::BasicBlock;
pub use generate::{BlockGenerator, GeneratorConfig, OperandPool};
pub use inst::Inst;
pub use mnemonic::{Mnemonic, OpClass};
pub use opcode::{Form, Opcode, OpcodeInfo, Width};
pub use operand::{MemRef, Operand};
pub use parse::ParseError;
pub use reg::{Reg, RegClass, RegFamily};
pub use registry::{OpcodeId, OpcodeRegistry};
