//! Instruction operands: registers, immediates, and memory references.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Reg, RegFamily};

/// A memory reference in `disp(base, index, scale)` form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Signed displacement.
    pub disp: i32,
}

impl MemRef {
    /// A memory reference with only a base register.
    pub fn base(base: Reg) -> Self {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp: 0,
        }
    }

    /// A memory reference with a base register and displacement.
    pub fn base_disp(base: Reg, disp: i32) -> Self {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// A memory reference with base, index, scale and displacement.
    pub fn full(base: Reg, index: Reg, scale: u8, disp: i32) -> Self {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Register families read to compute the effective address.
    pub fn address_regs(&self) -> impl Iterator<Item = RegFamily> + '_ {
        self.base
            .iter()
            .chain(self.index.iter())
            .map(|r| r.family())
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            write!(f, "{}", self.disp)?;
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(base) = self.base {
                write!(f, "{base}")?;
            }
            if let Some(index) = self.index {
                write!(f, ",{index},{}", self.scale)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A single instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(i64),
    /// A memory operand.
    Mem(MemRef),
}

impl Operand {
    /// Returns the register if this is a register operand.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the memory reference if this is a memory operand.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the immediate value if this is an immediate operand.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(*i),
            _ => None,
        }
    }

    /// True if this operand is a memory reference.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<Reg> for Operand {
    fn from(reg: Reg) -> Self {
        Operand::Reg(reg)
    }
}

impl From<MemRef> for Operand {
    fn from(mem: MemRef) -> Self {
        Operand::Mem(mem)
    }
}

impl From<i64> for Operand {
    fn from(imm: i64) -> Self {
        Operand::Imm(imm)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "${i}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegFamily, Width};

    fn reg(family: RegFamily) -> Reg {
        Reg::new(family, Width::B64)
    }

    #[test]
    fn memref_display_forms() {
        let rsp = reg(RegFamily::Rsp);
        let rax = reg(RegFamily::Rax);
        assert_eq!(MemRef::base(rsp).to_string(), "(%rsp)");
        assert_eq!(MemRef::base_disp(rsp, 16).to_string(), "16(%rsp)");
        assert_eq!(MemRef::base_disp(rsp, -8).to_string(), "-8(%rsp)");
        assert_eq!(MemRef::full(rsp, rax, 4, 32).to_string(), "32(%rsp,%rax,4)");
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Imm(5).to_string(), "$5");
        assert_eq!(Operand::Reg(reg(RegFamily::Rbx)).to_string(), "%rbx");
    }

    #[test]
    fn address_regs_collects_base_and_index() {
        let m = MemRef::full(reg(RegFamily::Rsp), reg(RegFamily::Rax), 8, 0);
        let families: Vec<_> = m.address_regs().collect();
        assert_eq!(families, vec![RegFamily::Rsp, RegFamily::Rax]);
    }

    #[test]
    fn operand_accessors() {
        let op = Operand::Imm(3);
        assert_eq!(op.as_imm(), Some(3));
        assert_eq!(op.as_reg(), None);
        assert!(!op.is_mem());
        assert!(Operand::Mem(MemRef::base(reg(RegFamily::Rdi))).is_mem());
    }
}
