//! A parser for AT&T-syntax basic blocks.
//!
//! The parser accepts the subset of AT&T x86-64 syntax produced by this
//! crate's own [`fmt::Display`](std::fmt::Display) implementations plus the
//! common spellings that appear in the paper's case studies (`pushq %rbx`,
//! `xorl %r13d, %r13d`, `addl %eax, 16(%rsp)`, `shrq $5, 16(%rsp)`, ...).

use std::fmt;

use crate::opcode::{Form, Opcode, OperandKind, Width};
use crate::registry::{OpcodeId, OpcodeRegistry};
use crate::{BasicBlock, Inst, MemRef, Mnemonic, Operand, Reg};

/// Error produced when a basic block cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be split into mnemonic and operands.
    BadLine(String),
    /// The mnemonic is not recognized.
    UnknownMnemonic(String),
    /// A register name is not recognized.
    UnknownRegister(String),
    /// An operand could not be parsed.
    BadOperand(String),
    /// The mnemonic is known but the combination of width and operand kinds is
    /// not in the opcode registry.
    UnsupportedOpcode(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine(line) => write!(f, "malformed instruction line `{line}`"),
            ParseError::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            ParseError::UnknownRegister(r) => write!(f, "unknown register `{r}`"),
            ParseError::BadOperand(o) => write!(f, "malformed operand `{o}`"),
            ParseError::UnsupportedOpcode(o) => write!(f, "unsupported opcode combination `{o}`"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a multi-line AT&T-syntax basic block.
///
/// Empty lines and lines starting with `#` or `//` are ignored. Instructions
/// may optionally be separated by `;` instead of newlines.
pub fn parse_block(text: &str) -> Result<BasicBlock, ParseError> {
    let mut block = BasicBlock::new();
    for line in text.lines().flat_map(|l| l.split(';')) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        block.push(parse_inst(line)?);
    }
    Ok(block)
}

/// Parses a single AT&T-syntax instruction.
pub fn parse_inst(line: &str) -> Result<Inst, ParseError> {
    let line = line.trim();
    let (mnemonic_text, rest) = match line.find(char::is_whitespace) {
        Some(pos) => (&line[..pos], line[pos..].trim()),
        None => (line, ""),
    };
    if mnemonic_text.is_empty() {
        return Err(ParseError::BadLine(line.to_string()));
    }

    let att_operands = split_operands(rest)
        .into_iter()
        .map(|s| parse_operand(&s))
        .collect::<Result<Vec<_>, _>>()?;
    // AT&T order is source-first; internal order is destination-first.
    let mut operands = att_operands;
    operands.reverse();

    // AVX three-operand spellings (`vaddps %ymm2, %ymm1, %ymm0`) are folded to
    // the destructive two-operand form used by the opcode registry: keep the
    // destination plus the memory source if present, otherwise the first source.
    if operands.len() == 3 && !operands.iter().any(|o| matches!(o, Operand::Imm(_))) {
        let dst = operands[0];
        let src = if operands[2].is_mem() {
            operands[2]
        } else {
            operands[1]
        };
        operands = vec![dst, src];
    }

    let (mnemonic, width) = resolve_mnemonic(mnemonic_text, &operands)?;
    let form = infer_form(&operands).ok_or_else(|| ParseError::BadLine(line.to_string()))?;
    let id = lookup_opcode(mnemonic, width, form, &operands)
        .ok_or_else(|| ParseError::UnsupportedOpcode(format!("{mnemonic_text} ({line})")))?;
    Ok(Inst::new(id, operands))
}

/// Splits an operand list on commas that are not inside parentheses.
fn split_operands(rest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in rest.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    let last = current.trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

fn parse_imm(text: &str) -> Result<i64, ParseError> {
    let (neg, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse::<i64>()
    }
    .map_err(|_| ParseError::BadOperand(text.to_string()))?;
    Ok(if neg { -value } else { value })
}

fn parse_operand(text: &str) -> Result<Operand, ParseError> {
    let text = text.trim();
    if let Some(imm) = text.strip_prefix('$') {
        return Ok(Operand::Imm(parse_imm(imm)?));
    }
    if text.starts_with('%') {
        let reg: Reg = text
            .parse()
            .map_err(|_| ParseError::UnknownRegister(text.to_string()))?;
        return Ok(Operand::Reg(reg));
    }
    // Memory operand: disp(base, index, scale) with every part optional except
    // the parentheses (a bare displacement is not supported).
    let open = text
        .find('(')
        .ok_or_else(|| ParseError::BadOperand(text.to_string()))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| ParseError::BadOperand(text.to_string()))?;
    if close < open {
        return Err(ParseError::BadOperand(text.to_string()));
    }
    let disp_text = text[..open].trim();
    let disp = if disp_text.is_empty() {
        0
    } else {
        parse_imm(disp_text)? as i32
    };
    let inner = &text[open + 1..close];
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    let parse_reg = |s: &str| -> Result<Reg, ParseError> {
        s.parse()
            .map_err(|_| ParseError::UnknownRegister(s.to_string()))
    };
    let base = match parts.first() {
        Some(&"") | None => None,
        Some(&s) => Some(parse_reg(s)?),
    };
    let index = match parts.get(1) {
        Some(&"") | None => None,
        Some(&s) => Some(parse_reg(s)?),
    };
    let scale = match parts.get(2) {
        Some(&"") | None => 1,
        Some(&s) => s
            .parse::<u8>()
            .map_err(|_| ParseError::BadOperand(text.to_string()))?,
    };
    Ok(Operand::Mem(MemRef {
        base,
        index,
        scale,
        disp,
    }))
}

/// True if any operand is a vector register.
fn has_vector_operand(operands: &[Operand]) -> bool {
    operands.iter().any(|o| match o {
        Operand::Reg(r) => r.width().is_vector(),
        _ => false,
    })
}

/// Resolves a mnemonic spelling plus operand list into a mnemonic and width.
fn resolve_mnemonic(text: &str, operands: &[Operand]) -> Result<(Mnemonic, Width), ParseError> {
    let lower = text.to_ascii_lowercase();

    // Exact match against mnemonics with no width suffix (SSE/AVX, setcc, nop, ...).
    for &m in Mnemonic::ALL {
        if !m.has_width_suffix() && m.att_name() == lower {
            // `movq`/`movd` (and `movsd`) are ambiguous between the SSE move and
            // a scalar integer spelling: prefer the vector reading only if a
            // vector register is actually involved.
            let ambiguous = matches!(m, Mnemonic::Movq | Mnemonic::Movd | Mnemonic::Movsd);
            if ambiguous && !has_vector_operand(operands) {
                continue;
            }
            let width = if operands
                .iter()
                .any(|o| matches!(o, Operand::Reg(r) if r.width() == Width::B256))
            {
                Width::B256
            } else if m.class().is_vector() {
                Width::B128
            } else {
                Width::B8
            };
            return Ok((m, width));
        }
    }

    // AVX `v`-prefixed spellings of SSE mnemonics (`vaddps`, `vpxor`, ...).
    if let Some(stripped) = lower.strip_prefix('v') {
        for &m in Mnemonic::ALL {
            if !m.has_width_suffix() && m.class().is_vector() && m.att_name() == stripped {
                let width = if operands
                    .iter()
                    .any(|o| matches!(o, Operand::Reg(r) if r.width() == Width::B256))
                {
                    Width::B256
                } else {
                    Width::B128
                };
                return Ok((m, width));
            }
        }
    }

    // Suffix-carrying scalar mnemonics (including SSE spellings with a vector operand,
    // which were handled above).
    let suffix_width = |c: char| match c {
        'b' => Some(Width::B8),
        'w' => Some(Width::B16),
        'l' => Some(Width::B32),
        'q' => Some(Width::B64),
        _ => None,
    };

    // movz/movs encode both source and destination widths (e.g. `movzbl`);
    // the destination width is the final suffix character.
    for prefix in ["movz", "movs"] {
        if lower.starts_with(prefix) && lower.len() > prefix.len() + 1 {
            let dest = lower.chars().last().and_then(suffix_width);
            if let Some(width) = dest {
                let m = if prefix == "movz" {
                    Mnemonic::Movzx
                } else {
                    Mnemonic::Movsx
                };
                return Ok((m, width));
            }
        }
    }

    let (base, explicit_width) = match lower.chars().last().and_then(suffix_width) {
        Some(width) if lower.len() > 1 => (&lower[..lower.len() - 1], Some(width)),
        _ => (lower.as_str(), None),
    };

    let candidates = [base, lower.as_str()];
    for candidate in candidates {
        for &m in Mnemonic::ALL {
            if m.has_width_suffix() && m.att_name() == candidate {
                let width = explicit_width
                    .filter(|_| candidate == base)
                    .or_else(|| {
                        operands.iter().find_map(|o| match o {
                            Operand::Reg(r) if !r.width().is_vector() => Some(r.width()),
                            _ => None,
                        })
                    })
                    .unwrap_or(Width::B32);
                return Ok((m, width));
            }
        }
    }

    Err(ParseError::UnknownMnemonic(text.to_string()))
}

/// Infers the operand form from destination-first operand kinds.
fn infer_form(operands: &[Operand]) -> Option<Form> {
    let kinds: Vec<OperandKind> = operands
        .iter()
        .map(|o| match o {
            Operand::Reg(_) => OperandKind::Reg,
            Operand::Mem(_) => OperandKind::Mem,
            Operand::Imm(_) => OperandKind::Imm,
        })
        .collect();
    use OperandKind::*;
    let form = match kinds.as_slice() {
        [] => Form::NoOperands,
        [Reg] => Form::R,
        [Mem] => Form::M,
        [Imm] => Form::I,
        [Reg, Reg] => Form::Rr,
        [Reg, Imm] => Form::Ri,
        [Reg, Mem] => Form::Rm,
        [Mem, Reg] => Form::Mr,
        [Mem, Imm] => Form::Mi,
        [Reg, Reg, Imm] => Form::Rri,
        [Reg, Mem, Imm] => Form::Rmi,
        _ => return None,
    };
    Some(form)
}

/// Looks up the opcode, correcting widths for mnemonics whose registry widths
/// differ from the operand-derived width (e.g. `cdq` is registered at 32 bits,
/// setcc at 8 bits, `push`/`pop` at 16/64 bits).
fn lookup_opcode(
    mnemonic: Mnemonic,
    width: Width,
    form: Form,
    operands: &[Operand],
) -> Option<OpcodeId> {
    let registry = OpcodeRegistry::global();
    let direct = registry.lookup(Opcode {
        mnemonic,
        width,
        form,
    });
    if direct.is_some() {
        return direct;
    }
    // Fall back to any registered width for this mnemonic/form combination,
    // preferring widths closest to the requested one.
    let mut best: Option<(u32, OpcodeId)> = None;
    for (id, info) in registry.iter() {
        if info.mnemonic() == mnemonic && info.form() == form {
            let distance = info.width().bits().abs_diff(width.bits());
            if best.is_none_or(|(d, _)| distance < d) {
                best = Some((distance, id));
            }
        }
    }
    let _ = operands;
    best.map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegFamily;

    fn parse(line: &str) -> Inst {
        parse_inst(line).unwrap_or_else(|e| panic!("failed to parse `{line}`: {e}"))
    }

    #[test]
    fn parses_paper_case_study_blocks() {
        assert_eq!(parse("pushq %rbx").info().name(), "PUSH64r");
        assert_eq!(parse("testl %r8d, %r8d").info().name(), "TEST32rr");
        assert_eq!(parse("xorl %r13d, %r13d").info().name(), "XOR32rr");
        assert_eq!(parse("addl %eax, 16(%rsp)").info().name(), "ADD32mr");
        assert_eq!(parse("shrq $5, 16(%rsp)").info().name(), "SHR64mi");
    }

    #[test]
    fn parses_memory_addressing_forms() {
        let inst = parse("movq 8(%rdi,%rax,4), %rcx");
        assert_eq!(inst.info().name(), "MOV64rm");
        let mem = inst.mem_operand().unwrap();
        assert_eq!(mem.disp, 8);
        assert_eq!(mem.scale, 4);
        assert_eq!(mem.base.unwrap().family(), RegFamily::Rdi);
        assert_eq!(mem.index.unwrap().family(), RegFamily::Rax);
    }

    #[test]
    fn disambiguates_scalar_and_vector_movq() {
        assert_eq!(parse("movq %rsi, %rdi").info().name(), "MOV64rr");
        assert_eq!(parse("movq %xmm1, %xmm0").info().name(), "MOVQrr");
        assert_eq!(parse("movsd (%rax), %xmm3").info().name(), "MOVSDrm");
    }

    #[test]
    fn parses_vector_and_fma_instructions() {
        assert_eq!(parse("addsd %xmm1, %xmm0").info().name(), "ADDSDrr");
        assert_eq!(parse("paddd (%rsi), %xmm2").info().name(), "PADDDrm");
        assert!(!parse("vfmadd231ps %ymm2, %ymm1, %ymm0").is_zero_idiom());
        assert_eq!(parse("vaddps %ymm1, %ymm0").info().name(), "VADDPSYrr");
    }

    #[test]
    fn parses_immediates_and_three_operand_forms() {
        assert_eq!(parse("imulq $8, %rbx, %rax").info().name(), "IMUL64rri");
        assert_eq!(
            parse("shufps $0x1b, %xmm1, %xmm0").info().name(),
            "SHUFPSrri"
        );
        assert_eq!(parse("pushq $42").info().name(), "PUSH64i");
        assert_eq!(parse("movl $-1, %eax").info().name(), "MOV32ri");
    }

    #[test]
    fn parses_no_operand_and_setcc() {
        assert_eq!(parse("nop").info().name(), "NOP32");
        assert_eq!(parse("cqo").info().name(), "CQO32");
        assert_eq!(parse("sete %al").info().name(), "SETE8r");
        assert_eq!(parse("movzbl (%rdi), %eax").info().name(), "MOVZ32rm");
    }

    #[test]
    fn block_parser_skips_comments_and_blank_lines() {
        let block =
            parse_block("# header\n\npushq %rbx\n// comment\nincl %eax ; decl %eax\n").unwrap();
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse_inst("frobnicate %rax"),
            Err(ParseError::UnknownMnemonic(_))
        ));
        assert!(matches!(
            parse_inst("addl %zzz, %eax"),
            Err(ParseError::UnknownRegister(_))
        ));
        assert!(matches!(
            parse_inst("addl $x, %eax"),
            Err(ParseError::BadOperand(_))
        ));
    }

    #[test]
    fn display_parse_round_trip() {
        for text in [
            "pushq %rbx",
            "xorl %r13d, %r13d",
            "addl %eax, 16(%rsp)",
            "shrq $5, 16(%rsp)",
            "movq %rsi, %rdi",
            "addsd %xmm1, %xmm0",
            "imulq $8, %rbx, %rax",
        ] {
            let inst = parse(text);
            assert_eq!(inst.to_string(), text);
            let reparsed = parse(&inst.to_string());
            assert_eq!(reparsed, inst);
        }
    }
}
