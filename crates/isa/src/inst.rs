//! Instructions: an opcode plus its explicit operands, with semantic queries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::opcode::{DestKind, Form, OpcodeInfo, OperandKind};
use crate::registry::{OpcodeId, OpcodeRegistry};
use crate::{Mnemonic, OpClass, Operand, RegFamily};

/// A single instruction.
///
/// Operands are stored in LLVM's destination-first order; [`fmt::Display`]
/// renders AT&T syntax (source-first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Inst {
    opcode: OpcodeId,
    operands: Vec<Operand>,
}

impl Inst {
    /// Creates an instruction, validating the operands against the opcode's form.
    ///
    /// # Panics
    ///
    /// Panics if the number or kinds of operands do not match the opcode's form.
    pub fn new(opcode: OpcodeId, operands: Vec<Operand>) -> Self {
        let info = OpcodeRegistry::global().info(opcode);
        let kinds = info.form().operand_kinds();
        assert_eq!(
            kinds.len(),
            operands.len(),
            "opcode {} expects {} operands, got {}",
            info.name(),
            kinds.len(),
            operands.len()
        );
        for (kind, operand) in kinds.iter().zip(&operands) {
            let ok = match kind {
                OperandKind::Reg => matches!(operand, Operand::Reg(_)),
                OperandKind::Mem => matches!(operand, Operand::Mem(_)),
                OperandKind::Imm => matches!(operand, Operand::Imm(_)),
            };
            assert!(
                ok,
                "operand {operand} does not match expected kind {kind:?} for {}",
                info.name()
            );
        }
        Inst { opcode, operands }
    }

    /// The opcode id.
    pub fn opcode(&self) -> OpcodeId {
        self.opcode
    }

    /// The opcode's static description (resolved via the global registry).
    pub fn info(&self) -> &'static OpcodeInfo {
        OpcodeRegistry::global().info(self.opcode)
    }

    /// The explicit operands, in destination-first order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// The mnemonic.
    pub fn mnemonic(&self) -> Mnemonic {
        self.info().mnemonic()
    }

    /// The coarse operation class.
    pub fn class(&self) -> OpClass {
        self.info().class()
    }

    /// True if this instruction reads from memory.
    pub fn loads(&self) -> bool {
        self.info().loads()
    }

    /// True if this instruction writes to memory.
    pub fn stores(&self) -> bool {
        self.info().stores()
    }

    /// True if this instruction touches memory at all.
    pub fn has_memory_operand(&self) -> bool {
        self.loads() || self.stores() || self.operands.iter().any(Operand::is_mem)
    }

    /// The memory operand, if the form has one.
    pub fn mem_operand(&self) -> Option<&crate::MemRef> {
        self.operands.iter().find_map(Operand::as_mem)
    }

    /// True if this is a recognized zero idiom (`xorl %eax, %eax`,
    /// `pxor %xmm0, %xmm0`, ...): a dependency-breaking instruction whose
    /// result does not depend on its inputs.
    pub fn is_zero_idiom(&self) -> bool {
        if !self.mnemonic().is_zero_idiom_capable() || self.info().form() != Form::Rr {
            return false;
        }
        match (self.operands[0].as_reg(), self.operands[1].as_reg()) {
            (Some(a), Some(b)) => a.family() == b.family(),
            _ => false,
        }
    }

    /// Register families read by this instruction, including address registers
    /// of memory operands and implicit reads (flags, stack pointer, ...).
    ///
    /// Zero idioms still report their syntactic reads; simulators that model
    /// dependency-breaking (like the reference CPUs in `difftune-cpu`) check
    /// [`Self::is_zero_idiom`] separately.
    pub fn reads(&self) -> Vec<RegFamily> {
        let info = self.info();
        let mut reads = Vec::with_capacity(4);
        for (i, operand) in self.operands.iter().enumerate() {
            match operand {
                Operand::Reg(reg) => {
                    let is_dest = i == 0 && info.dest_kind() != DestKind::None;
                    let dest_read = info.dest_kind() == DestKind::ReadWrite;
                    if !is_dest || dest_read {
                        reads.push(reg.family());
                    }
                }
                Operand::Mem(mem) => reads.extend(mem.address_regs()),
                Operand::Imm(_) => {}
            }
        }
        reads.extend_from_slice(info.implicit_reads());
        reads.sort_unstable();
        reads.dedup();
        reads
    }

    /// Register families written by this instruction, including implicit writes.
    pub fn writes(&self) -> Vec<RegFamily> {
        let info = self.info();
        let mut writes = Vec::with_capacity(2);
        if info.dest_kind() != DestKind::None {
            if let Some(Operand::Reg(reg)) = self.operands.first() {
                writes.push(reg.family());
            }
        }
        writes.extend_from_slice(info.implicit_writes());
        writes.sort_unstable();
        writes.dedup();
        writes
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let info = self.info();
        let mnemonic = info.mnemonic();
        // AT&T mnemonic spelling: base name plus a width suffix for scalar
        // integer operations; movz/movs additionally encode the (assumed 8-bit)
        // source width.
        let mut name = mnemonic.att_name().to_string();
        if mnemonic.has_width_suffix() && !info.width().is_vector() {
            if matches!(mnemonic, Mnemonic::Movzx | Mnemonic::Movsx) {
                name.push('b');
            }
            name.push_str(info.width().att_suffix());
        }
        write!(f, "{name}")?;
        if !self.operands.is_empty() {
            // AT&T order: sources first, destination last.
            let mut ops: Vec<String> = self.operands.iter().map(|o| o.to_string()).collect();
            ops.reverse();
            write!(f, " {}", ops.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemRef, Reg, RegFamily, Width};

    fn registry() -> &'static OpcodeRegistry {
        OpcodeRegistry::global()
    }

    fn reg(family: RegFamily, width: Width) -> Operand {
        Operand::Reg(Reg::new(family, width))
    }

    #[test]
    fn push_semantics_match_paper_case_study() {
        let id = registry().by_name("PUSH64r").unwrap();
        let push = Inst::new(id, vec![reg(RegFamily::Rbx, Width::B64)]);
        assert!(push.stores());
        assert!(!push.loads());
        assert!(push.reads().contains(&RegFamily::Rbx));
        assert!(push.reads().contains(&RegFamily::Rsp));
        assert!(push.writes().contains(&RegFamily::Rsp));
        assert_eq!(push.to_string(), "pushq %rbx");
    }

    #[test]
    fn xor_zero_idiom_detection() {
        let id = registry().by_name("XOR32rr").unwrap();
        let r13d = reg(RegFamily::R13, Width::B32);
        let zero = Inst::new(id, vec![r13d, r13d]);
        assert!(zero.is_zero_idiom());
        assert_eq!(zero.to_string(), "xorl %r13d, %r13d");

        let other = Inst::new(id, vec![r13d, reg(RegFamily::Rax, Width::B32)]);
        assert!(!other.is_zero_idiom());
    }

    #[test]
    fn add_mem_reg_is_rmw_and_prints_att_order() {
        let id = registry().by_name("ADD32mr").unwrap();
        let mem = Operand::Mem(MemRef::base_disp(Reg::new(RegFamily::Rsp, Width::B64), 16));
        let inst = Inst::new(id, vec![mem, reg(RegFamily::Rax, Width::B32)]);
        assert!(inst.loads() && inst.stores());
        assert_eq!(inst.to_string(), "addl %eax, 16(%rsp)");
        assert!(
            inst.reads().contains(&RegFamily::Rsp),
            "address register is read"
        );
        assert!(inst.reads().contains(&RegFamily::Rax));
        assert!(inst.writes().contains(&RegFamily::Flags));
    }

    #[test]
    fn mov_dest_is_not_read() {
        let id = registry().by_name("MOV64rr").unwrap();
        let inst = Inst::new(
            id,
            vec![
                reg(RegFamily::Rdi, Width::B64),
                reg(RegFamily::Rsi, Width::B64),
            ],
        );
        assert_eq!(inst.reads(), vec![RegFamily::Rsi]);
        assert_eq!(inst.writes(), vec![RegFamily::Rdi]);
        assert_eq!(inst.to_string(), "movq %rsi, %rdi");
    }

    #[test]
    fn shr_with_immediate_matches_figure2_block() {
        let id = registry().by_name("SHR64mi").unwrap();
        let mem = Operand::Mem(MemRef::base_disp(Reg::new(RegFamily::Rsp, Width::B64), 16));
        let inst = Inst::new(id, vec![mem, Operand::Imm(5)]);
        assert_eq!(inst.to_string(), "shrq $5, 16(%rsp)");
        assert!(inst.loads() && inst.stores());
    }

    #[test]
    #[should_panic]
    fn operand_kind_mismatch_panics() {
        let id = registry().by_name("ADD32rr").unwrap();
        let _ = Inst::new(id, vec![Operand::Imm(1), Operand::Imm(2)]);
    }

    #[test]
    fn division_has_implicit_rax_rdx_traffic() {
        let id = registry().by_name("DIV64r").unwrap();
        let inst = Inst::new(id, vec![reg(RegFamily::Rcx, Width::B64)]);
        assert!(inst.reads().contains(&RegFamily::Rax));
        assert!(inst.reads().contains(&RegFamily::Rdx));
        assert!(inst.writes().contains(&RegFamily::Rax));
        assert!(inst.writes().contains(&RegFamily::Rdx));
    }
}
