//! Instruction mnemonics and their coarse operation classes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Coarse class of an operation, used by the reference microarchitectures to
/// assign "true" latencies and port usage, by the corpus generator to build
/// application-specific instruction mixes, and by the evaluation to bucket
/// blocks into BHive-style categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple scalar integer ALU operation (add, sub, logic, compare, ...).
    IntAlu,
    /// Scalar integer multiply.
    IntMul,
    /// Scalar integer divide.
    IntDiv,
    /// Shift or rotate.
    Shift,
    /// Register-to-register or immediate moves (including movzx/movsx/cmov/set).
    Mov,
    /// Address computation (`lea`).
    Lea,
    /// Stack push/pop.
    Stack,
    /// Bit scan / population count style operations.
    BitScan,
    /// Vector integer ALU operation.
    VecAlu,
    /// Vector integer multiply.
    VecMul,
    /// Vector shuffle / permute / pack / unpack / blend.
    VecShuffle,
    /// Vector (or scalar SSE) register moves and loads/stores.
    VecMov,
    /// Floating point add/sub/min/max/compare.
    FpAdd,
    /// Floating point multiply.
    FpMul,
    /// Floating point divide.
    FpDiv,
    /// Floating point square root.
    FpSqrt,
    /// Fused multiply-add.
    Fma,
    /// Conversions between integer and floating point.
    Convert,
    /// No-operation.
    Nop,
}

impl OpClass {
    /// True if the class executes on the vector/floating-point side of the machine.
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            OpClass::VecAlu
                | OpClass::VecMul
                | OpClass::VecShuffle
                | OpClass::VecMov
                | OpClass::FpAdd
                | OpClass::FpMul
                | OpClass::FpDiv
                | OpClass::FpSqrt
                | OpClass::Fma
                | OpClass::Convert
        )
    }
}

macro_rules! mnemonics {
    ($( $variant:ident => ($att:literal, $class:expr, wf: $wf:expr, rf: $rf:expr, suffix: $suffix:expr) ),+ $(,)?) => {
        /// An instruction mnemonic.
        ///
        /// Mnemonic × operand width × operand form yields an [`crate::Opcode`]
        /// (e.g. `Add` × 32 bits × `mr` is `ADD32mr`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Mnemonic {
            $($variant),+
        }

        impl Mnemonic {
            /// Every mnemonic, in a fixed order.
            pub const ALL: &'static [Mnemonic] = &[$(Mnemonic::$variant),+];

            /// The AT&T base name (without a width suffix), e.g. `"add"`.
            pub fn att_name(self) -> &'static str {
                match self { $(Mnemonic::$variant => $att),+ }
            }

            /// The coarse operation class.
            pub fn class(self) -> OpClass {
                match self { $(Mnemonic::$variant => $class),+ }
            }

            /// True if the instruction writes the status flags.
            pub fn writes_flags(self) -> bool {
                match self { $(Mnemonic::$variant => $wf),+ }
            }

            /// True if the instruction reads the status flags.
            pub fn reads_flags(self) -> bool {
                match self { $(Mnemonic::$variant => $rf),+ }
            }

            /// True if the AT&T spelling takes a width suffix (`b`/`w`/`l`/`q`).
            pub fn has_width_suffix(self) -> bool {
                match self { $(Mnemonic::$variant => $suffix),+ }
            }
        }
    };
}

mnemonics! {
    // Scalar integer ALU.
    Add => ("add", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Sub => ("sub", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    And => ("and", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Or => ("or", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Xor => ("xor", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Adc => ("adc", OpClass::IntAlu, wf: true, rf: true, suffix: true),
    Sbb => ("sbb", OpClass::IntAlu, wf: true, rf: true, suffix: true),
    Cmp => ("cmp", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Test => ("test", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Inc => ("inc", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Dec => ("dec", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Neg => ("neg", OpClass::IntAlu, wf: true, rf: false, suffix: true),
    Not => ("not", OpClass::IntAlu, wf: false, rf: false, suffix: true),
    // Multiplies and divides.
    Imul => ("imul", OpClass::IntMul, wf: true, rf: false, suffix: true),
    Mul => ("mul", OpClass::IntMul, wf: true, rf: false, suffix: true),
    Div => ("div", OpClass::IntDiv, wf: true, rf: false, suffix: true),
    Idiv => ("idiv", OpClass::IntDiv, wf: true, rf: false, suffix: true),
    // Shifts and rotates.
    Shl => ("shl", OpClass::Shift, wf: true, rf: false, suffix: true),
    Shr => ("shr", OpClass::Shift, wf: true, rf: false, suffix: true),
    Sar => ("sar", OpClass::Shift, wf: true, rf: false, suffix: true),
    Rol => ("rol", OpClass::Shift, wf: true, rf: false, suffix: true),
    Ror => ("ror", OpClass::Shift, wf: true, rf: false, suffix: true),
    // Moves.
    Mov => ("mov", OpClass::Mov, wf: false, rf: false, suffix: true),
    Movzx => ("movz", OpClass::Mov, wf: false, rf: false, suffix: true),
    Movsx => ("movs", OpClass::Mov, wf: false, rf: false, suffix: true),
    Lea => ("lea", OpClass::Lea, wf: false, rf: false, suffix: true),
    Xchg => ("xchg", OpClass::Mov, wf: false, rf: false, suffix: true),
    Bswap => ("bswap", OpClass::Mov, wf: false, rf: false, suffix: true),
    // Conditional moves / sets (one representative per condition group).
    Cmove => ("cmove", OpClass::Mov, wf: false, rf: true, suffix: true),
    Cmovne => ("cmovne", OpClass::Mov, wf: false, rf: true, suffix: true),
    Cmovl => ("cmovl", OpClass::Mov, wf: false, rf: true, suffix: true),
    Cmovg => ("cmovg", OpClass::Mov, wf: false, rf: true, suffix: true),
    Cmovb => ("cmovb", OpClass::Mov, wf: false, rf: true, suffix: true),
    Cmova => ("cmova", OpClass::Mov, wf: false, rf: true, suffix: true),
    Sete => ("sete", OpClass::Mov, wf: false, rf: true, suffix: false),
    Setne => ("setne", OpClass::Mov, wf: false, rf: true, suffix: false),
    Setl => ("setl", OpClass::Mov, wf: false, rf: true, suffix: false),
    Setg => ("setg", OpClass::Mov, wf: false, rf: true, suffix: false),
    Setb => ("setb", OpClass::Mov, wf: false, rf: true, suffix: false),
    Seta => ("seta", OpClass::Mov, wf: false, rf: true, suffix: false),
    // Stack operations.
    Push => ("push", OpClass::Stack, wf: false, rf: false, suffix: true),
    Pop => ("pop", OpClass::Stack, wf: false, rf: false, suffix: true),
    // Bit scans.
    Bsf => ("bsf", OpClass::BitScan, wf: true, rf: false, suffix: true),
    Bsr => ("bsr", OpClass::BitScan, wf: true, rf: false, suffix: true),
    Popcnt => ("popcnt", OpClass::BitScan, wf: true, rf: false, suffix: true),
    Lzcnt => ("lzcnt", OpClass::BitScan, wf: true, rf: false, suffix: true),
    Tzcnt => ("tzcnt", OpClass::BitScan, wf: true, rf: false, suffix: true),
    // Sign extensions into %rdx and no-ops.
    Cdq => ("cdq", OpClass::IntAlu, wf: false, rf: false, suffix: false),
    Cqo => ("cqo", OpClass::IntAlu, wf: false, rf: false, suffix: false),
    Nop => ("nop", OpClass::Nop, wf: false, rf: false, suffix: false),
    // SSE/AVX moves (scalar and packed).
    Movss => ("movss", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movsd => ("movsd", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movaps => ("movaps", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movups => ("movups", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movapd => ("movapd", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movupd => ("movupd", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movdqa => ("movdqa", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movdqu => ("movdqu", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movd => ("movd", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Movq => ("movq", OpClass::VecMov, wf: false, rf: false, suffix: false),
    Vbroadcastss => ("vbroadcastss", OpClass::VecMov, wf: false, rf: false, suffix: false),
    // Scalar floating point arithmetic.
    Addss => ("addss", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Addsd => ("addsd", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Subss => ("subss", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Subsd => ("subsd", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Mulss => ("mulss", OpClass::FpMul, wf: false, rf: false, suffix: false),
    Mulsd => ("mulsd", OpClass::FpMul, wf: false, rf: false, suffix: false),
    Divss => ("divss", OpClass::FpDiv, wf: false, rf: false, suffix: false),
    Divsd => ("divsd", OpClass::FpDiv, wf: false, rf: false, suffix: false),
    Minss => ("minss", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Maxss => ("maxss", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Minsd => ("minsd", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Maxsd => ("maxsd", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Sqrtss => ("sqrtss", OpClass::FpSqrt, wf: false, rf: false, suffix: false),
    Sqrtsd => ("sqrtsd", OpClass::FpSqrt, wf: false, rf: false, suffix: false),
    Ucomiss => ("ucomiss", OpClass::FpAdd, wf: true, rf: false, suffix: false),
    Ucomisd => ("ucomisd", OpClass::FpAdd, wf: true, rf: false, suffix: false),
    // Packed floating point arithmetic.
    Addps => ("addps", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Addpd => ("addpd", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Subps => ("subps", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Subpd => ("subpd", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Mulps => ("mulps", OpClass::FpMul, wf: false, rf: false, suffix: false),
    Mulpd => ("mulpd", OpClass::FpMul, wf: false, rf: false, suffix: false),
    Divps => ("divps", OpClass::FpDiv, wf: false, rf: false, suffix: false),
    Divpd => ("divpd", OpClass::FpDiv, wf: false, rf: false, suffix: false),
    Minps => ("minps", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Maxps => ("maxps", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    Sqrtps => ("sqrtps", OpClass::FpSqrt, wf: false, rf: false, suffix: false),
    Sqrtpd => ("sqrtpd", OpClass::FpSqrt, wf: false, rf: false, suffix: false),
    Andps => ("andps", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Andpd => ("andpd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Orps => ("orps", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Orpd => ("orpd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Xorps => ("xorps", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Xorpd => ("xorpd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Shufps => ("shufps", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Unpcklps => ("unpcklps", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Unpckhps => ("unpckhps", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Blendps => ("blendps", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Cmpps => ("cmpps", OpClass::FpAdd, wf: false, rf: false, suffix: false),
    // Packed integer arithmetic.
    Pand => ("pand", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Por => ("por", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pxor => ("pxor", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Paddb => ("paddb", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Paddw => ("paddw", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Paddd => ("paddd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Paddq => ("paddq", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psubb => ("psubb", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psubw => ("psubw", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psubd => ("psubd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psubq => ("psubq", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pmulld => ("pmulld", OpClass::VecMul, wf: false, rf: false, suffix: false),
    Pmullw => ("pmullw", OpClass::VecMul, wf: false, rf: false, suffix: false),
    Pmulhw => ("pmulhw", OpClass::VecMul, wf: false, rf: false, suffix: false),
    Pmaddwd => ("pmaddwd", OpClass::VecMul, wf: false, rf: false, suffix: false),
    Pcmpeqb => ("pcmpeqb", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pcmpeqd => ("pcmpeqd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pcmpgtd => ("pcmpgtd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pminsd => ("pminsd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pmaxsd => ("pmaxsd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pabsd => ("pabsd", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pavgb => ("pavgb", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psllw => ("psllw", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pslld => ("pslld", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psllq => ("psllq", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psrlw => ("psrlw", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psrld => ("psrld", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Psrlq => ("psrlq", OpClass::VecAlu, wf: false, rf: false, suffix: false),
    Pshufd => ("pshufd", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Pshufb => ("pshufb", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Punpcklbw => ("punpcklbw", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Punpckldq => ("punpckldq", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Punpcklqdq => ("punpcklqdq", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Packssdw => ("packssdw", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Packuswb => ("packuswb", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Pblendw => ("pblendw", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Pmovzxbw => ("pmovzxbw", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    Pmovsxbw => ("pmovsxbw", OpClass::VecShuffle, wf: false, rf: false, suffix: false),
    // Conversions.
    Cvtsi2ss => ("cvtsi2ss", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvtsi2sd => ("cvtsi2sd", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvttss2si => ("cvttss2si", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvttsd2si => ("cvttsd2si", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvtss2sd => ("cvtss2sd", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvtsd2ss => ("cvtsd2ss", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvtdq2ps => ("cvtdq2ps", OpClass::Convert, wf: false, rf: false, suffix: false),
    Cvtps2dq => ("cvtps2dq", OpClass::Convert, wf: false, rf: false, suffix: false),
    // Fused multiply-add (AVX2/FMA, three-operand destructive).
    Vfmadd231ss => ("vfmadd231ss", OpClass::Fma, wf: false, rf: false, suffix: false),
    Vfmadd231sd => ("vfmadd231sd", OpClass::Fma, wf: false, rf: false, suffix: false),
    Vfmadd231ps => ("vfmadd231ps", OpClass::Fma, wf: false, rf: false, suffix: false),
    Vfmadd231pd => ("vfmadd231pd", OpClass::Fma, wf: false, rf: false, suffix: false),
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.att_name())
    }
}

impl Mnemonic {
    /// The uppercase LLVM-style name fragment used in opcode names
    /// (e.g. `ADD` for `add`, `VFMADD231PS` for `vfmadd231ps`).
    pub fn llvm_name(self) -> String {
        self.att_name().to_ascii_uppercase()
    }

    /// True if this mnemonic's only explicit-destination form writes memory
    /// implicitly through the stack pointer.
    pub fn is_stack_op(self) -> bool {
        matches!(self, Mnemonic::Push | Mnemonic::Pop)
    }

    /// True if the mnemonic can act as a zero idiom when both operands are the
    /// same register (`xor %eax, %eax`, `pxor %xmm0, %xmm0`, ...).
    pub fn is_zero_idiom_capable(self) -> bool {
        matches!(
            self,
            Mnemonic::Xor
                | Mnemonic::Sub
                | Mnemonic::Pxor
                | Mnemonic::Xorps
                | Mnemonic::Xorpd
                | Mnemonic::Psubb
                | Mnemonic::Psubw
                | Mnemonic::Psubd
                | Mnemonic::Psubq
                | Mnemonic::Pcmpeqb
                | Mnemonic::Pcmpeqd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mnemonics_have_nonempty_unique_names() {
        let mut seen = std::collections::HashSet::new();
        for &m in Mnemonic::ALL {
            assert!(!m.att_name().is_empty());
            assert!(
                seen.insert(m.att_name()),
                "duplicate AT&T name {}",
                m.att_name()
            );
        }
        assert!(Mnemonic::ALL.len() >= 100, "expected a rich mnemonic set");
    }

    #[test]
    fn class_consistency() {
        assert_eq!(Mnemonic::Add.class(), OpClass::IntAlu);
        assert_eq!(Mnemonic::Mulsd.class(), OpClass::FpMul);
        assert!(Mnemonic::Paddd.class().is_vector());
        assert!(!Mnemonic::Add.class().is_vector());
    }

    #[test]
    fn flags_behaviour() {
        assert!(Mnemonic::Add.writes_flags());
        assert!(!Mnemonic::Mov.writes_flags());
        assert!(Mnemonic::Cmove.reads_flags());
        assert!(Mnemonic::Adc.reads_flags() && Mnemonic::Adc.writes_flags());
    }

    #[test]
    fn zero_idiom_capability() {
        assert!(Mnemonic::Xor.is_zero_idiom_capable());
        assert!(Mnemonic::Pxor.is_zero_idiom_capable());
        assert!(!Mnemonic::Add.is_zero_idiom_capable());
    }
}
