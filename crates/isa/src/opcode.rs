//! Opcodes: mnemonic × operand width × operand form, in LLVM's naming style.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Mnemonic, RegFamily};

/// Operand/operation width in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Width {
    B8,
    B16,
    B32,
    B64,
    B128,
    B256,
}

impl Width {
    /// The width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::B8 => 8,
            Width::B16 => 16,
            Width::B32 => 32,
            Width::B64 => 64,
            Width::B128 => 128,
            Width::B256 => 256,
        }
    }

    /// The AT&T width suffix (`b`, `w`, `l`, `q`) for scalar widths.
    pub fn att_suffix(self) -> &'static str {
        match self {
            Width::B8 => "b",
            Width::B16 => "w",
            Width::B32 => "l",
            Width::B64 => "q",
            Width::B128 | Width::B256 => "",
        }
    }

    /// True if this width addresses the vector register file.
    pub fn is_vector(self) -> bool {
        matches!(self, Width::B128 | Width::B256)
    }
}

/// Operand form in LLVM's dst-first letter encoding.
///
/// The letters describe the explicit operands in destination-first order:
/// `r` register, `m` memory, `i` immediate. For example [`Form::Mr`] is a
/// memory destination with a register source (`ADD32mr` — `addl %eax, (%rbx)`
/// in AT&T syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Form {
    /// register ← register
    Rr,
    /// register ← immediate
    Ri,
    /// register ← memory
    Rm,
    /// memory ← register
    Mr,
    /// memory ← immediate
    Mi,
    /// single register operand
    R,
    /// single memory operand
    M,
    /// single immediate operand
    I,
    /// register ← register, immediate
    Rri,
    /// register ← memory, immediate
    Rmi,
    /// no explicit operands
    NoOperands,
}

impl Form {
    /// The lowercase suffix used in opcode names (`"mr"`, `"rri"`, ...).
    pub fn name_suffix(self) -> &'static str {
        match self {
            Form::Rr => "rr",
            Form::Ri => "ri",
            Form::Rm => "rm",
            Form::Mr => "mr",
            Form::Mi => "mi",
            Form::R => "r",
            Form::M => "m",
            Form::I => "i",
            Form::Rri => "rri",
            Form::Rmi => "rmi",
            Form::NoOperands => "",
        }
    }

    /// Expected operand kinds in destination-first order.
    pub fn operand_kinds(self) -> &'static [OperandKind] {
        use OperandKind::*;
        match self {
            Form::Rr => &[Reg, Reg],
            Form::Ri => &[Reg, Imm],
            Form::Rm => &[Reg, Mem],
            Form::Mr => &[Mem, Reg],
            Form::Mi => &[Mem, Imm],
            Form::R => &[Reg],
            Form::M => &[Mem],
            Form::I => &[Imm],
            Form::Rri => &[Reg, Reg, Imm],
            Form::Rmi => &[Reg, Mem, Imm],
            Form::NoOperands => &[],
        }
    }

    /// Number of explicit operands.
    pub fn num_operands(self) -> usize {
        self.operand_kinds().len()
    }

    /// True if any explicit operand is a memory reference.
    pub fn has_mem(self) -> bool {
        self.operand_kinds().contains(&OperandKind::Mem)
    }
}

/// The kind of an explicit operand slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandKind {
    /// A register operand.
    Reg,
    /// A memory operand.
    Mem,
    /// An immediate operand.
    Imm,
}

/// An opcode: a mnemonic instantiated at a width and operand form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Opcode {
    /// The mnemonic.
    pub mnemonic: Mnemonic,
    /// The operation width.
    pub width: Width,
    /// The operand form.
    pub form: Form,
}

impl Opcode {
    /// The LLVM-style opcode name, e.g. `ADD32mr`, `PUSH64r`, `PADDDrr`,
    /// `VADDPSYrm` (the `Y` marks 256-bit forms).
    pub fn name(&self) -> String {
        let base = self.mnemonic.llvm_name();
        match self.width {
            Width::B128 => format!("{}{}", base, self.form.name_suffix()),
            Width::B256 => {
                let base = if base.starts_with('V') {
                    base
                } else {
                    format!("V{base}")
                };
                format!("{}Y{}", base, self.form.name_suffix())
            }
            w => format!("{}{}{}", base, w.bits(), self.form.name_suffix()),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// How the first explicit operand (the destination slot) is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DestKind {
    /// There is no written destination (e.g. `cmp`, `test`, `push`, `nop`).
    None,
    /// The destination is both read and written (e.g. `add`, `shl`, `paddd`).
    ReadWrite,
    /// The destination is overwritten without being read (e.g. `mov`, `lea`, `pop`).
    WriteOnly,
}

/// Full static description of an opcode: its identity plus the semantic facts
/// the simulators need (memory behaviour, implicit register traffic, how the
/// destination operand is accessed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpcodeInfo {
    opcode: Opcode,
    name: String,
    dest: DestKind,
    loads: bool,
    stores: bool,
    implicit_reads: Vec<RegFamily>,
    implicit_writes: Vec<RegFamily>,
}

impl OpcodeInfo {
    pub(crate) fn new(
        opcode: Opcode,
        dest: DestKind,
        loads: bool,
        stores: bool,
        implicit_reads: Vec<RegFamily>,
        implicit_writes: Vec<RegFamily>,
    ) -> Self {
        let name = opcode.name();
        OpcodeInfo {
            opcode,
            name,
            dest,
            loads,
            stores,
            implicit_reads,
            implicit_writes,
        }
    }

    /// The opcode identity.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The LLVM-style name (e.g. `"XOR32rr"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mnemonic.
    pub fn mnemonic(&self) -> Mnemonic {
        self.opcode.mnemonic
    }

    /// The operation width.
    pub fn width(&self) -> Width {
        self.opcode.width
    }

    /// The operand form.
    pub fn form(&self) -> Form {
        self.opcode.form
    }

    /// The coarse operation class of the mnemonic.
    pub fn class(&self) -> crate::OpClass {
        self.opcode.mnemonic.class()
    }

    /// How the destination slot is accessed.
    pub fn dest_kind(&self) -> DestKind {
        self.dest
    }

    /// True if executing the opcode reads from memory.
    pub fn loads(&self) -> bool {
        self.loads
    }

    /// True if executing the opcode writes to memory.
    pub fn stores(&self) -> bool {
        self.stores
    }

    /// Register families read regardless of explicit operands.
    pub fn implicit_reads(&self) -> &[RegFamily] {
        &self.implicit_reads
    }

    /// Register families written regardless of explicit operands.
    pub fn implicit_writes(&self) -> &[RegFamily] {
        &self.implicit_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_names_match_llvm_style() {
        let add = Opcode {
            mnemonic: Mnemonic::Add,
            width: Width::B32,
            form: Form::Mr,
        };
        assert_eq!(add.name(), "ADD32mr");
        let push = Opcode {
            mnemonic: Mnemonic::Push,
            width: Width::B64,
            form: Form::R,
        };
        assert_eq!(push.name(), "PUSH64r");
        let paddd = Opcode {
            mnemonic: Mnemonic::Paddd,
            width: Width::B128,
            form: Form::Rr,
        };
        assert_eq!(paddd.name(), "PADDDrr");
        let vaddps = Opcode {
            mnemonic: Mnemonic::Addps,
            width: Width::B256,
            form: Form::Rm,
        };
        assert_eq!(vaddps.name(), "VADDPSYrm");
        let fma = Opcode {
            mnemonic: Mnemonic::Vfmadd231ps,
            width: Width::B256,
            form: Form::Rr,
        };
        assert_eq!(fma.name(), "VFMADD231PSYrr");
        let shr = Opcode {
            mnemonic: Mnemonic::Shr,
            width: Width::B64,
            form: Form::Mi,
        };
        assert_eq!(shr.name(), "SHR64mi");
    }

    #[test]
    fn form_operand_kinds() {
        assert_eq!(Form::Mr.num_operands(), 2);
        assert!(Form::Mr.has_mem());
        assert!(!Form::Rr.has_mem());
        assert_eq!(Form::Rri.operand_kinds().len(), 3);
        assert_eq!(Form::NoOperands.num_operands(), 0);
    }

    #[test]
    fn width_properties() {
        assert_eq!(Width::B32.att_suffix(), "l");
        assert_eq!(Width::B64.att_suffix(), "q");
        assert!(Width::B128.is_vector());
        assert!(!Width::B64.is_vector());
        assert_eq!(Width::B256.bits(), 256);
    }
}
