//! The opcode registry: the fixed universe of opcodes the workspace operates on.
//!
//! The registry assigns each opcode a dense [`OpcodeId`], which is the index
//! used by simulator parameter tables (`difftune-sim`), the reference
//! microarchitecture tables (`difftune-cpu`), and the surrogate's embedding
//! table (`difftune-surrogate`). The registry is deterministic: the same
//! opcode always receives the same id.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::mnemonic::OpClass;
use crate::opcode::{DestKind, Form, Opcode, OpcodeInfo, Width};
use crate::{Mnemonic, RegFamily};

/// A dense identifier for an opcode within an [`OpcodeRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpcodeId(pub u16);

impl OpcodeId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpcodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// The universe of opcodes.
#[derive(Debug, Clone)]
pub struct OpcodeRegistry {
    infos: Vec<OpcodeInfo>,
    by_name: HashMap<String, OpcodeId>,
    by_opcode: HashMap<Opcode, OpcodeId>,
}

const SCALAR_WIDTHS: &[Width] = &[Width::B8, Width::B16, Width::B32, Width::B64];
const WIDE_WIDTHS: &[Width] = &[Width::B16, Width::B32, Width::B64];
const XMM: &[Width] = &[Width::B128];
const XMM_YMM: &[Width] = &[Width::B128, Width::B256];

const ALU_FORMS: &[Form] = &[Form::Rr, Form::Ri, Form::Rm, Form::Mr, Form::Mi];
const UNARY_FORMS: &[Form] = &[Form::R, Form::M];
const SHIFT_FORMS: &[Form] = &[Form::Ri, Form::Mi, Form::Rr];
const RR_RM: &[Form] = &[Form::Rr, Form::Rm];
const VEC_MOV_FORMS: &[Form] = &[Form::Rr, Form::Rm, Form::Mr];

/// Scalar SSE mnemonics that only exist at 128-bit width.
fn is_scalar_sse(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Movss
            | Movsd
            | Movd
            | Movq
            | Addss
            | Addsd
            | Subss
            | Subsd
            | Mulss
            | Mulsd
            | Divss
            | Divsd
            | Minss
            | Maxss
            | Minsd
            | Maxsd
            | Sqrtss
            | Sqrtsd
            | Ucomiss
            | Ucomisd
            | Cvtss2sd
            | Cvtsd2ss
            | Cvtsi2ss
            | Cvtsi2sd
            | Cvttss2si
            | Cvttsd2si
            | Vfmadd231ss
            | Vfmadd231sd
    )
}

/// The (widths, forms) grid of valid opcodes for a mnemonic.
fn valid_combos(m: Mnemonic) -> (&'static [Width], &'static [Form]) {
    use Mnemonic::*;
    match m {
        Add | Sub | And | Or | Xor | Adc | Sbb | Cmp | Test => (SCALAR_WIDTHS, ALU_FORMS),
        Inc | Dec | Neg | Not => (SCALAR_WIDTHS, UNARY_FORMS),
        Imul => (WIDE_WIDTHS, &[Form::Rr, Form::Rm, Form::Rri]),
        Mul | Div | Idiv => (SCALAR_WIDTHS, UNARY_FORMS),
        Shl | Shr | Sar | Rol | Ror => (SCALAR_WIDTHS, SHIFT_FORMS),
        Mov => (SCALAR_WIDTHS, ALU_FORMS),
        Movzx | Movsx => (WIDE_WIDTHS, RR_RM),
        Lea => (WIDE_WIDTHS, &[Form::Rm]),
        Xchg => (SCALAR_WIDTHS, &[Form::Rr, Form::Mr]),
        Bswap => (&[Width::B32, Width::B64], &[Form::R]),
        Cmove | Cmovne | Cmovl | Cmovg | Cmovb | Cmova => (WIDE_WIDTHS, RR_RM),
        Sete | Setne | Setl | Setg | Setb | Seta => (&[Width::B8], UNARY_FORMS),
        Push => (&[Width::B16, Width::B64], &[Form::R, Form::M, Form::I]),
        Pop => (&[Width::B16, Width::B64], UNARY_FORMS),
        Bsf | Bsr | Popcnt | Lzcnt | Tzcnt => (WIDE_WIDTHS, RR_RM),
        Cdq | Cqo | Nop => (&[Width::B32], &[Form::NoOperands]),
        Movaps | Movups | Movapd | Movupd | Movdqa | Movdqu => (XMM_YMM, VEC_MOV_FORMS),
        Movss | Movsd | Movd | Movq => (XMM, VEC_MOV_FORMS),
        Vbroadcastss => (XMM_YMM, RR_RM),
        // Shuffles/blends/compares that carry an immediate control operand.
        Shufps | Blendps | Pblendw | Cmpps | Pshufd => (XMM_YMM, &[Form::Rri, Form::Rmi]),
        m if is_scalar_sse(m) => (XMM, RR_RM),
        // Everything else is a packed vector operation available at 128 and 256 bits.
        _ => (XMM_YMM, RR_RM),
    }
}

/// Computes the destination-access kind for a mnemonic.
fn dest_kind(m: Mnemonic, form: Form) -> DestKind {
    use Mnemonic::*;
    if matches!(form, Form::I | Form::NoOperands) {
        return DestKind::None;
    }
    match m {
        Cmp | Test | Ucomiss | Ucomisd | Push | Nop => DestKind::None,
        Mov | Movzx | Movsx | Lea | Pop | Sete | Setne | Setl | Setg | Setb | Seta | Bsf | Bsr
        | Popcnt | Lzcnt | Tzcnt | Bswap | Movss | Movsd | Movaps | Movups | Movapd | Movupd
        | Movdqa | Movdqu | Movd | Movq | Vbroadcastss | Cvtsi2ss | Cvtsi2sd | Cvttss2si
        | Cvttsd2si | Cvtss2sd | Cvtsd2ss | Cvtdq2ps | Cvtps2dq | Sqrtss | Sqrtsd | Sqrtps
        | Sqrtpd | Pshufd | Pmovzxbw | Pmovsxbw | Pabsd => DestKind::WriteOnly,
        // Unary read-modify-write and all destructive binary operations.
        _ => DestKind::ReadWrite,
    }
}

/// Computes (loads, stores) for a mnemonic at a form.
fn memory_behaviour(m: Mnemonic, form: Form, dest: DestKind) -> (bool, bool) {
    use Mnemonic::*;
    match m {
        Push => (matches!(form, Form::M), true),
        Pop => (true, matches!(form, Form::M)),
        Lea => (false, false),
        _ => match form {
            // Memory in a pure source position.
            Form::Rm | Form::Rmi => (true, false),
            // Memory in the destination slot: loads iff the destination is also
            // read (read-modify-write like `addl %eax, (%rsp)`), stores iff the
            // destination is written at all. `cmpl $0, (%rsp)` only loads.
            Form::Mr | Form::Mi | Form::M => {
                let written = dest != DestKind::None;
                let read = dest != DestKind::WriteOnly;
                (read, written)
            }
            _ => (false, false),
        },
    }
}

/// Computes implicit register reads/writes for a mnemonic.
fn implicit_regs(m: Mnemonic) -> (Vec<RegFamily>, Vec<RegFamily>) {
    use Mnemonic::*;
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    match m {
        Push | Pop => {
            reads.push(RegFamily::Rsp);
            writes.push(RegFamily::Rsp);
        }
        Mul | Imul | Div | Idiv => {
            reads.push(RegFamily::Rax);
            writes.push(RegFamily::Rax);
            if matches!(m, Div | Idiv) {
                reads.push(RegFamily::Rdx);
            }
            writes.push(RegFamily::Rdx);
        }
        Cdq | Cqo => {
            reads.push(RegFamily::Rax);
            writes.push(RegFamily::Rdx);
        }
        _ => {}
    }
    if m.reads_flags() {
        reads.push(RegFamily::Flags);
    }
    if m.writes_flags() {
        writes.push(RegFamily::Flags);
    }
    (reads, writes)
}

impl OpcodeRegistry {
    /// Builds the full opcode universe.
    pub fn full() -> Self {
        let mut infos = Vec::new();
        let mut by_name = HashMap::new();
        let mut by_opcode = HashMap::new();
        for &mnemonic in Mnemonic::ALL {
            let (widths, forms) = valid_combos(mnemonic);
            for &width in widths {
                for &form in forms {
                    let opcode = Opcode {
                        mnemonic,
                        width,
                        form,
                    };
                    let dest = dest_kind(mnemonic, form);
                    let (loads, stores) = memory_behaviour(mnemonic, form, dest);
                    let (implicit_reads, implicit_writes) = implicit_regs(mnemonic);
                    let info = OpcodeInfo::new(
                        opcode,
                        dest,
                        loads,
                        stores,
                        implicit_reads,
                        implicit_writes,
                    );
                    let id = OpcodeId(infos.len() as u16);
                    by_name.insert(info.name().to_string(), id);
                    by_opcode.insert(opcode, id);
                    infos.push(info);
                }
            }
        }
        OpcodeRegistry {
            infos,
            by_name,
            by_opcode,
        }
    }

    /// The process-wide shared registry.
    ///
    /// The opcode universe is fixed, so all crates in the workspace share this
    /// instance; [`crate::Inst`] semantic queries resolve against it.
    pub fn global() -> &'static OpcodeRegistry {
        static GLOBAL: OnceLock<OpcodeRegistry> = OnceLock::new();
        GLOBAL.get_or_init(OpcodeRegistry::full)
    }

    /// Number of opcodes in the registry.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True if the registry contains no opcodes (never the case for [`Self::full`]).
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// The static description of an opcode.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    pub fn info(&self, id: OpcodeId) -> &OpcodeInfo {
        &self.infos[id.index()]
    }

    /// Looks up an opcode id by its LLVM-style name (e.g. `"ADD32mr"`).
    pub fn by_name(&self, name: &str) -> Option<OpcodeId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an opcode id by its structured identity.
    pub fn lookup(&self, opcode: Opcode) -> Option<OpcodeId> {
        self.by_opcode.get(&opcode).copied()
    }

    /// Iterates over all `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OpcodeId, &OpcodeInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (OpcodeId(i as u16), info))
    }

    /// All opcode ids whose mnemonic class matches `class`.
    pub fn ids_with_class(&self, class: OpClass) -> Vec<OpcodeId> {
        self.iter()
            .filter(|(_, info)| info.class() == class)
            .map(|(id, _)| id)
            .collect()
    }
}

impl Default for OpcodeRegistry {
    fn default() -> Self {
        OpcodeRegistry::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_size_is_in_paper_ballpark() {
        let registry = OpcodeRegistry::full();
        assert!(
            registry.len() >= 600 && registry.len() <= 1100,
            "expected a few hundred opcodes like the paper's 837, got {}",
            registry.len()
        );
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let registry = OpcodeRegistry::full();
        assert_eq!(registry.by_name.len(), registry.len());
        for (id, info) in registry.iter() {
            assert_eq!(registry.by_name(info.name()), Some(id));
            assert_eq!(registry.lookup(info.opcode()), Some(id));
        }
    }

    #[test]
    fn paper_case_study_opcodes_exist() {
        let registry = OpcodeRegistry::full();
        for name in [
            "PUSH64r", "XOR32rr", "ADD32mr", "SHR64mi", "TEST32rr", "MOV32ri",
        ] {
            assert!(registry.by_name(name).is_some(), "missing opcode {name}");
        }
    }

    #[test]
    fn semantics_of_known_opcodes() {
        let registry = OpcodeRegistry::full();
        let push = registry.info(registry.by_name("PUSH64r").unwrap());
        assert!(push.stores() && !push.loads());
        assert!(push.implicit_writes().contains(&RegFamily::Rsp));

        let pop = registry.info(registry.by_name("POP64r").unwrap());
        assert!(pop.loads() && !pop.stores());

        let add_mr = registry.info(registry.by_name("ADD32mr").unwrap());
        assert!(
            add_mr.loads() && add_mr.stores(),
            "RMW must both load and store"
        );

        let mov_mr = registry.info(registry.by_name("MOV32mr").unwrap());
        assert!(!mov_mr.loads() && mov_mr.stores(), "store must not load");

        let cmp_mi = registry.info(registry.by_name("CMP32mi").unwrap());
        assert!(
            cmp_mi.loads() && !cmp_mi.stores(),
            "compare-with-memory only loads"
        );

        let lea = registry.info(registry.by_name("LEA64rm").unwrap());
        assert!(
            !lea.loads() && !lea.stores(),
            "lea computes an address without touching memory"
        );

        let xor = registry.info(registry.by_name("XOR32rr").unwrap());
        assert!(xor.implicit_writes().contains(&RegFamily::Flags));
    }

    #[test]
    fn global_registry_is_shared() {
        let a = OpcodeRegistry::global();
        let b = OpcodeRegistry::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.len(), OpcodeRegistry::full().len());
    }

    #[test]
    fn class_filter_returns_nonempty_sets() {
        let registry = OpcodeRegistry::full();
        for class in [
            OpClass::IntAlu,
            OpClass::FpMul,
            OpClass::VecAlu,
            OpClass::Stack,
        ] {
            assert!(
                !registry.ids_with_class(class).is_empty(),
                "no opcodes for {class:?}"
            );
        }
    }
}
