//! Random basic-block generation.
//!
//! The generator synthesizes straight-line blocks with a configurable
//! instruction-class mix, memory-operand density, and register-dependency
//! density. `difftune-bhive` layers application-specific profiles (OpenBLAS,
//! Redis, ...) on top of this generator to build its BHive-style corpus.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::opcode::{OperandKind, Width};
use crate::registry::{OpcodeId, OpcodeRegistry};
use crate::{BasicBlock, Inst, MemRef, Mnemonic, OpClass, Operand, Reg, RegFamily};

/// Configuration for [`BlockGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Relative weight of each operation class in the generated mix.
    pub class_weights: Vec<(OpClass, f64)>,
    /// Probability that an instruction uses a memory operand form when the
    /// chosen opcode family has one.
    pub mem_operand_prob: f64,
    /// Probability that a source register is drawn from recently written
    /// registers (creating a dependency chain) rather than uniformly.
    pub dependency_prob: f64,
    /// Minimum generated block length.
    pub min_len: usize,
    /// Maximum generated block length.
    pub max_len: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            class_weights: vec![
                (OpClass::IntAlu, 30.0),
                (OpClass::Mov, 25.0),
                (OpClass::Lea, 5.0),
                (OpClass::Shift, 5.0),
                (OpClass::IntMul, 2.0),
                (OpClass::IntDiv, 0.5),
                (OpClass::Stack, 4.0),
                (OpClass::BitScan, 1.0),
                (OpClass::VecMov, 8.0),
                (OpClass::VecAlu, 6.0),
                (OpClass::VecMul, 2.0),
                (OpClass::VecShuffle, 2.0),
                (OpClass::FpAdd, 4.0),
                (OpClass::FpMul, 3.0),
                (OpClass::FpDiv, 0.5),
                (OpClass::FpSqrt, 0.3),
                (OpClass::Fma, 1.0),
                (OpClass::Convert, 0.7),
            ],
            mem_operand_prob: 0.35,
            dependency_prob: 0.4,
            min_len: 1,
            max_len: 16,
        }
    }
}

/// The pool of registers the generator draws operands from, plus the recently
/// written registers used to create dependency chains.
#[derive(Debug, Clone)]
pub struct OperandPool {
    gprs: Vec<RegFamily>,
    vecs: Vec<RegFamily>,
    address_bases: Vec<RegFamily>,
    recent_gpr: Vec<RegFamily>,
    recent_vec: Vec<RegFamily>,
}

impl Default for OperandPool {
    fn default() -> Self {
        OperandPool {
            // Leave %rsp/%rbp out of the general pool so they stay usable as
            // address bases, mirroring compiler-generated code.
            gprs: vec![
                RegFamily::Rax,
                RegFamily::Rbx,
                RegFamily::Rcx,
                RegFamily::Rdx,
                RegFamily::Rsi,
                RegFamily::Rdi,
                RegFamily::R8,
                RegFamily::R9,
                RegFamily::R10,
                RegFamily::R11,
                RegFamily::R12,
                RegFamily::R13,
                RegFamily::R14,
                RegFamily::R15,
            ],
            vecs: RegFamily::VECS.to_vec(),
            address_bases: vec![
                RegFamily::Rsp,
                RegFamily::Rbp,
                RegFamily::Rdi,
                RegFamily::Rsi,
                RegFamily::Rbx,
            ],
            recent_gpr: Vec::new(),
            recent_vec: Vec::new(),
        }
    }
}

impl OperandPool {
    fn pick_gpr<R: Rng + ?Sized>(&self, rng: &mut R, dependency_prob: f64) -> RegFamily {
        if !self.recent_gpr.is_empty() && rng.gen_bool(dependency_prob) {
            *self.recent_gpr.choose(rng).expect("non-empty")
        } else {
            *self.gprs.choose(rng).expect("non-empty")
        }
    }

    fn pick_vec<R: Rng + ?Sized>(&self, rng: &mut R, dependency_prob: f64) -> RegFamily {
        if !self.recent_vec.is_empty() && rng.gen_bool(dependency_prob) {
            *self.recent_vec.choose(rng).expect("non-empty")
        } else {
            *self.vecs.choose(rng).expect("non-empty")
        }
    }

    fn record_write(&mut self, family: RegFamily) {
        let list = if family.class() == crate::RegClass::Vector {
            &mut self.recent_vec
        } else {
            &mut self.recent_gpr
        };
        list.push(family);
        if list.len() > 4 {
            list.remove(0);
        }
    }
}

/// A random basic-block generator.
#[derive(Debug, Clone)]
pub struct BlockGenerator {
    config: GeneratorConfig,
    /// Opcode ids bucketed by (class, has-memory-operand).
    reg_only: Vec<Vec<OpcodeId>>,
    with_mem: Vec<Vec<OpcodeId>>,
    weights: Vec<f64>,
}

impl BlockGenerator {
    /// Creates a generator for the given configuration, drawing opcodes from
    /// the global registry.
    pub fn new(config: GeneratorConfig) -> Self {
        let registry = OpcodeRegistry::global();
        let classes: Vec<OpClass> = config.class_weights.iter().map(|(c, _)| *c).collect();
        let weights: Vec<f64> = config.class_weights.iter().map(|(_, w)| *w).collect();
        let mut reg_only = vec![Vec::new(); classes.len()];
        let mut with_mem = vec![Vec::new(); classes.len()];
        for (id, info) in registry.iter() {
            // Skip 256-bit forms in generation by default; profiles that want
            // them can still parse/construct them directly.
            if info.width() == Width::B256 {
                continue;
            }
            if let Some(slot) = classes.iter().position(|&c| c == info.class()) {
                let bucket = if info.form().has_mem() {
                    &mut with_mem[slot]
                } else {
                    &mut reg_only[slot]
                };
                // Weight common mnemonics: real code moves data with plain
                // moves far more often than with cmov/xchg/bswap, and memory
                // traffic is dominated by mov loads and stores rather than
                // ALU-with-memory forms.
                for _ in 0..generation_weight(info.mnemonic(), info.form()) {
                    bucket.push(id);
                }
            }
        }
        BlockGenerator {
            config,
            reg_only,
            with_mem,
            weights,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a block whose length is drawn uniformly from
    /// `[min_len, max_len]`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BasicBlock {
        let len = rng.gen_range(self.config.min_len..=self.config.max_len);
        self.generate_with_len(rng, len)
    }

    /// Generates a block with exactly `len` instructions.
    pub fn generate_with_len<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> BasicBlock {
        let mut pool = OperandPool::default();
        let mut block = BasicBlock::new();
        for _ in 0..len {
            let inst = self.generate_inst(rng, &mut pool);
            for family in inst.writes() {
                if family.class() == crate::RegClass::Gpr
                    || family.class() == crate::RegClass::Vector
                {
                    pool.record_write(family);
                }
            }
            block.push(inst);
        }
        block
    }

    /// Generates a single instruction.
    pub fn generate_inst<R: Rng + ?Sized>(&self, rng: &mut R, pool: &mut OperandPool) -> Inst {
        // Weighted class choice.
        let total: f64 = self.weights.iter().sum();
        let mut target = rng.gen_range(0.0..total);
        let mut slot = 0;
        for (i, w) in self.weights.iter().enumerate() {
            if target < *w {
                slot = i;
                break;
            }
            target -= w;
        }

        // Memory operands mostly ride on plain moves in real code; other
        // classes fold memory operands far less often.
        let class_mem_prob = match self.classes_slot(slot) {
            OpClass::Mov | OpClass::VecMov | OpClass::Stack => self.config.mem_operand_prob,
            _ => self.config.mem_operand_prob * 0.3,
        };
        let use_mem = rng.gen_bool(class_mem_prob.clamp(0.0, 1.0));
        let bucket = if use_mem && !self.with_mem[slot].is_empty() {
            &self.with_mem[slot]
        } else if !self.reg_only[slot].is_empty() {
            &self.reg_only[slot]
        } else {
            &self.with_mem[slot]
        };
        let id = *bucket.choose(rng).expect("class bucket is empty");
        self.instantiate(rng, id, pool)
    }

    /// The class generated for a given weight slot.
    fn classes_slot(&self, slot: usize) -> OpClass {
        self.config.class_weights[slot].0
    }

    /// Builds operands for an opcode.
    fn instantiate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: OpcodeId,
        pool: &mut OperandPool,
    ) -> Inst {
        let registry = OpcodeRegistry::global();
        let info = registry.info(id);
        let dep = self.config.dependency_prob;
        let width = info.width();
        let mut operands = Vec::new();
        for kind in info.form().operand_kinds() {
            let operand = match kind {
                OperandKind::Reg => {
                    // Conversions mix register files: the integer side of a cvt
                    // is a GPR even though the opcode is vector-width.
                    let op_index = operands.len();
                    let gpr_slot = match info.mnemonic() {
                        Mnemonic::Cvtsi2ss | Mnemonic::Cvtsi2sd => op_index == 1,
                        Mnemonic::Cvttss2si | Mnemonic::Cvttsd2si => op_index == 0,
                        _ => !width.is_vector(),
                    };
                    if gpr_slot {
                        let family = pool.pick_gpr(rng, dep);
                        let reg_width = if width.is_vector() { Width::B64 } else { width };
                        Operand::Reg(Reg::new(family, reg_width))
                    } else {
                        Operand::Reg(Reg::new(pool.pick_vec(rng, dep), Width::B128))
                    }
                }
                OperandKind::Mem => {
                    let base = *pool.address_bases.choose(rng).expect("non-empty");
                    let disp = rng.gen_range(-8i32..32) * 8;
                    let mem = if rng.gen_bool(0.2) {
                        let index = pool.pick_gpr(rng, dep);
                        MemRef {
                            base: Some(Reg::new(base, Width::B64)),
                            index: Some(Reg::new(index, Width::B64)),
                            scale: *[1u8, 2, 4, 8].choose(rng).expect("non-empty"),
                            disp,
                        }
                    } else {
                        MemRef::base_disp(Reg::new(base, Width::B64), disp)
                    };
                    Operand::Mem(mem)
                }
                OperandKind::Imm => Operand::Imm(rng.gen_range(0..64)),
            };
            operands.push(operand);
        }
        Inst::new(id, operands)
    }
}

impl Default for BlockGenerator {
    fn default() -> Self {
        BlockGenerator::new(GeneratorConfig::default())
    }
}

/// Relative frequency of a mnemonic within its class bucket, approximating how
/// often the spelling appears in compiler-generated code. Plain moves dominate
/// data movement; conditional moves, exchanges and byte swaps are rare; memory
/// operands appear mostly on moves rather than on read-modify-write ALU forms.
fn generation_weight(mnemonic: Mnemonic, form: crate::Form) -> usize {
    use Mnemonic::*;
    let base = match mnemonic {
        Mov => 12,
        Movaps | Movups | Movdqa | Movdqu | Movss | Movsd => 5,
        Movzx | Movsx => 3,
        Cmove | Cmovne | Cmovl | Cmovg | Cmovb | Cmova => 1,
        Sete | Setne | Setl | Setg | Setb | Seta => 1,
        Xchg | Bswap => 1,
        Add | Sub | Cmp | Test | And | Or | Xor | Lea => 6,
        Adc | Sbb => 1,
        Inc | Dec => 3,
        Paddd | Pxor | Addps | Mulps | Addsd | Mulsd | Addss | Mulss => 4,
        _ => 2,
    };
    // Read-modify-write memory destinations are much rarer than register
    // destinations or plain loads in real code.
    match form {
        crate::Form::Mr | crate::Form::Mi => (base / 4).max(1),
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_blocks_in_requested_length_range() {
        let generator = BlockGenerator::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let block = generator.generate(&mut rng);
            assert!(!block.is_empty() && block.len() <= 16);
        }
    }

    #[test]
    fn generated_blocks_round_trip_through_text() {
        let generator = BlockGenerator::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let block = generator.generate_with_len(&mut rng, 6);
            let text = block.to_string();
            let reparsed: BasicBlock = text.parse().unwrap_or_else(|e| {
                panic!("generated block failed to reparse: {e}\n{text}");
            });
            assert_eq!(reparsed.len(), block.len());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let generator = BlockGenerator::default();
        let a = generator.generate_with_len(&mut StdRng::seed_from_u64(3), 8);
        let b = generator.generate_with_len(&mut StdRng::seed_from_u64(3), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn class_weights_shape_the_mix() {
        let config = GeneratorConfig {
            class_weights: vec![(OpClass::FpMul, 1.0)],
            mem_operand_prob: 0.0,
            ..GeneratorConfig::default()
        };
        let generator = BlockGenerator::new(config);
        let mut rng = StdRng::seed_from_u64(11);
        let block = generator.generate_with_len(&mut rng, 20);
        assert!(block.iter().all(|i| i.class() == OpClass::FpMul));
    }
}
