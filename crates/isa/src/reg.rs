//! Architectural registers.
//!
//! Dependency tracking in the simulators happens at the granularity of a
//! [`RegFamily`]: `%eax` and `%rax` alias the same family, matching how the
//! out-of-order models in this workspace (and llvm-mca's register file) treat
//! partial register writes.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An architectural register family (aliasing class).
///
/// General-purpose families cover all width views (`%al`/`%ax`/`%eax`/`%rax`
/// are all [`RegFamily::Rax`]); vector families cover the XMM/YMM views.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum RegFamily {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    Xmm0,
    Xmm1,
    Xmm2,
    Xmm3,
    Xmm4,
    Xmm5,
    Xmm6,
    Xmm7,
    Xmm8,
    Xmm9,
    Xmm10,
    Xmm11,
    Xmm12,
    Xmm13,
    Xmm14,
    Xmm15,
    /// Instruction pointer (only ever read, via RIP-relative addressing).
    Rip,
    /// The status flags register (EFLAGS), written by most ALU instructions.
    Flags,
}

impl RegFamily {
    /// All general-purpose register families, in encoding order.
    pub const GPRS: [RegFamily; 16] = [
        RegFamily::Rax,
        RegFamily::Rbx,
        RegFamily::Rcx,
        RegFamily::Rdx,
        RegFamily::Rsi,
        RegFamily::Rdi,
        RegFamily::Rbp,
        RegFamily::Rsp,
        RegFamily::R8,
        RegFamily::R9,
        RegFamily::R10,
        RegFamily::R11,
        RegFamily::R12,
        RegFamily::R13,
        RegFamily::R14,
        RegFamily::R15,
    ];

    /// All vector register families, in encoding order.
    pub const VECS: [RegFamily; 16] = [
        RegFamily::Xmm0,
        RegFamily::Xmm1,
        RegFamily::Xmm2,
        RegFamily::Xmm3,
        RegFamily::Xmm4,
        RegFamily::Xmm5,
        RegFamily::Xmm6,
        RegFamily::Xmm7,
        RegFamily::Xmm8,
        RegFamily::Xmm9,
        RegFamily::Xmm10,
        RegFamily::Xmm11,
        RegFamily::Xmm12,
        RegFamily::Xmm13,
        RegFamily::Xmm14,
        RegFamily::Xmm15,
    ];

    /// The register class this family belongs to.
    pub fn class(self) -> RegClass {
        match self {
            RegFamily::Flags => RegClass::Flags,
            RegFamily::Rip => RegClass::Rip,
            f if Self::VECS.contains(&f) => RegClass::Vector,
            _ => RegClass::Gpr,
        }
    }

    /// A small dense index usable for tables keyed by register family.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Total number of register families (the valid range of [`Self::index`]).
    pub const COUNT: usize = 34;
}

/// Broad register classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// 8/16/32/64-bit general purpose registers.
    Gpr,
    /// 128/256-bit vector registers.
    Vector,
    /// The instruction pointer.
    Rip,
    /// The status flags.
    Flags,
}

/// A register operand: a family viewed at a particular width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg {
    family: RegFamily,
    width: crate::Width,
}

impl Reg {
    /// Creates a register from a family and access width.
    ///
    /// # Panics
    ///
    /// Panics if the width is not valid for the register class (e.g. a 256-bit
    /// view of a general-purpose register).
    pub fn new(family: RegFamily, width: crate::Width) -> Self {
        let ok = match family.class() {
            RegClass::Gpr => width.bits() <= 64,
            RegClass::Vector => width.bits() >= 128,
            RegClass::Rip => width == crate::Width::B64,
            RegClass::Flags => width == crate::Width::B64,
        };
        assert!(ok, "invalid width {width:?} for register family {family:?}");
        Reg { family, width }
    }

    /// The aliasing family of this register.
    pub fn family(self) -> RegFamily {
        self.family
    }

    /// The access width of this register view.
    pub fn width(self) -> crate::Width {
        self.width
    }

    /// Returns the same family viewed at a different width.
    pub fn with_width(self, width: crate::Width) -> Self {
        Reg::new(self.family, width)
    }
}

/// The AT&T spelling of a GPR family at each width: (8, 16, 32, 64).
fn gpr_names(family: RegFamily) -> (&'static str, &'static str, &'static str, &'static str) {
    match family {
        RegFamily::Rax => ("al", "ax", "eax", "rax"),
        RegFamily::Rbx => ("bl", "bx", "ebx", "rbx"),
        RegFamily::Rcx => ("cl", "cx", "ecx", "rcx"),
        RegFamily::Rdx => ("dl", "dx", "edx", "rdx"),
        RegFamily::Rsi => ("sil", "si", "esi", "rsi"),
        RegFamily::Rdi => ("dil", "di", "edi", "rdi"),
        RegFamily::Rbp => ("bpl", "bp", "ebp", "rbp"),
        RegFamily::Rsp => ("spl", "sp", "esp", "rsp"),
        RegFamily::R8 => ("r8b", "r8w", "r8d", "r8"),
        RegFamily::R9 => ("r9b", "r9w", "r9d", "r9"),
        RegFamily::R10 => ("r10b", "r10w", "r10d", "r10"),
        RegFamily::R11 => ("r11b", "r11w", "r11d", "r11"),
        RegFamily::R12 => ("r12b", "r12w", "r12d", "r12"),
        RegFamily::R13 => ("r13b", "r13w", "r13d", "r13"),
        RegFamily::R14 => ("r14b", "r14w", "r14d", "r14"),
        RegFamily::R15 => ("r15b", "r15w", "r15d", "r15"),
        _ => unreachable!("not a GPR family"),
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use crate::Width;
        match self.family.class() {
            RegClass::Gpr => {
                let (b, w, d, q) = gpr_names(self.family);
                let name = match self.width {
                    Width::B8 => b,
                    Width::B16 => w,
                    Width::B32 => d,
                    Width::B64 => q,
                    _ => unreachable!(),
                };
                write!(f, "%{name}")
            }
            RegClass::Vector => {
                let idx = self.family.index() - RegFamily::Xmm0.index();
                let prefix = if self.width == Width::B256 {
                    "ymm"
                } else {
                    "xmm"
                };
                write!(f, "%{prefix}{idx}")
            }
            RegClass::Rip => write!(f, "%rip"),
            RegClass::Flags => write!(f, "%eflags"),
        }
    }
}

/// Error produced when a register name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub(crate) String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use crate::Width;
        let name = s.strip_prefix('%').unwrap_or(s);
        if let Some(rest) = name.strip_prefix("xmm") {
            if let Ok(i) = rest.parse::<usize>() {
                if i < 16 {
                    return Ok(Reg::new(RegFamily::VECS[i], Width::B128));
                }
            }
        }
        if let Some(rest) = name.strip_prefix("ymm") {
            if let Ok(i) = rest.parse::<usize>() {
                if i < 16 {
                    return Ok(Reg::new(RegFamily::VECS[i], Width::B256));
                }
            }
        }
        if name == "rip" {
            return Ok(Reg::new(RegFamily::Rip, Width::B64));
        }
        for family in RegFamily::GPRS {
            let (b, w, d, q) = gpr_names(family);
            let width = if name == b {
                Width::B8
            } else if name == w {
                Width::B16
            } else if name == d {
                Width::B32
            } else if name == q {
                Width::B64
            } else {
                continue;
            };
            return Ok(Reg::new(family, width));
        }
        Err(ParseRegError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Width;

    #[test]
    fn display_round_trips_all_gprs() {
        for family in RegFamily::GPRS {
            for width in [Width::B8, Width::B16, Width::B32, Width::B64] {
                let reg = Reg::new(family, width);
                let text = reg.to_string();
                let parsed: Reg = text.parse().unwrap();
                assert_eq!(parsed, reg, "round trip failed for {text}");
            }
        }
    }

    #[test]
    fn display_round_trips_all_vectors() {
        for family in RegFamily::VECS {
            for width in [Width::B128, Width::B256] {
                let reg = Reg::new(family, width);
                let parsed: Reg = reg.to_string().parse().unwrap();
                assert_eq!(parsed, reg);
            }
        }
    }

    #[test]
    fn width_views_alias_same_family() {
        let eax: Reg = "%eax".parse().unwrap();
        let rax: Reg = "%rax".parse().unwrap();
        assert_eq!(eax.family(), rax.family());
        assert_ne!(eax, rax);
    }

    #[test]
    fn unknown_register_is_an_error() {
        assert!("%zzz".parse::<Reg>().is_err());
        assert!("%xmm16".parse::<Reg>().is_err());
    }

    #[test]
    #[should_panic]
    fn invalid_width_panics() {
        let _ = Reg::new(RegFamily::Rax, Width::B128);
    }

    #[test]
    fn family_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for family in RegFamily::GPRS.iter().chain(RegFamily::VECS.iter()) {
            assert!(family.index() < RegFamily::COUNT);
            assert!(seen.insert(family.index()));
        }
        assert!(RegFamily::Flags.index() < RegFamily::COUNT);
        assert!(RegFamily::Rip.index() < RegFamily::COUNT);
    }
}
