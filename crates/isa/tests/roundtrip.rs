//! Property tests pinning the `parse.rs`/`block.rs` contract the corpus and
//! the scenario matrix rely on: every block the generator can produce — under
//! *any* [`GeneratorConfig`], not just the default profile — prints to text
//! that parses back to the identical block, and printing is a fixed point.
//!
//! The BHive-style corpus (`difftune-bhive`) layers application profiles with
//! very different class mixes and memory-operand densities on top of the
//! generator, and the matrix fingerprints/checkpoints hash block *text*, so a
//! single non-round-tripping spelling would silently corrupt dataset
//! fingerprints and resume checks.

use difftune_isa::{BasicBlock, BlockGenerator, GeneratorConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generator configuration drawn from a seed: one of several class-weight
/// subsets of the default mix (mirroring how the corpus profiles slice it),
/// with swept memory-operand and dependency densities.
fn config_for(profile: usize, mem_operand_prob: f64, dependency_prob: f64) -> GeneratorConfig {
    let default = GeneratorConfig::default();
    let class_weights = match profile % 4 {
        0 => default.class_weights.clone(),
        // Scalar-ish front half of the mix.
        1 => default.class_weights[..6].to_vec(),
        // Vector/FP-ish back half.
        2 => default.class_weights[6..].to_vec(),
        // Every other class.
        _ => default.class_weights.iter().step_by(2).cloned().collect(),
    };
    GeneratorConfig {
        class_weights,
        mem_operand_prob,
        dependency_prob,
        min_len: 1,
        max_len: 24,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// parse → `Display` → re-parse is the identity on generated blocks, and
    /// the printed text is already canonical (printing again changes
    /// nothing).
    #[test]
    fn generated_blocks_round_trip_under_any_generator_config(
        seed in 0u64..100_000,
        profile in 0usize..4,
        mem_operand_prob in 0.0f64..1.0,
        dependency_prob in 0.0f64..1.0,
        len in 1usize..24,
    ) {
        let generator = BlockGenerator::new(config_for(profile, mem_operand_prob, dependency_prob));
        let mut rng = StdRng::seed_from_u64(seed);
        let block = generator.generate_with_len(&mut rng, len);
        prop_assert_eq!(block.len(), len);

        let text = block.to_string();
        let reparsed: BasicBlock = text
            .parse()
            .unwrap_or_else(|error| panic!("generated block failed to parse: {error}\n{text}"));
        prop_assert_eq!(&reparsed, &block, "parse(display(block)) != block for:\n{}", text);
        prop_assert_eq!(reparsed.to_string(), text, "printing is not a fixed point");
    }

    /// Instruction-level round-trip: each line of a printed block parses back
    /// to exactly that instruction, so blocks can be rebuilt line by line
    /// (the corpus deduplicates on text and relies on this).
    #[test]
    fn each_printed_line_parses_back_to_its_instruction(
        seed in 0u64..100_000,
        profile in 0usize..4,
        len in 1usize..12,
    ) {
        let generator = BlockGenerator::new(config_for(profile, 0.5, 0.5));
        let mut rng = StdRng::seed_from_u64(seed);
        let block = generator.generate_with_len(&mut rng, len);
        for inst in block.iter() {
            let line = inst.to_string();
            let single: BasicBlock = line
                .parse()
                .unwrap_or_else(|error| panic!("line failed to parse: {error}\n{line}"));
            prop_assert_eq!(single.len(), 1);
            prop_assert_eq!(&single.iter().next().unwrap().to_string(), &line);
        }
    }
}
