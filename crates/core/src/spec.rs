//! Parameter specifications: which parameters are learned and how they are
//! sampled when building the simulated dataset.

use serde::{Deserialize, Serialize};

/// Sampling ranges for the simulated-dataset distribution (paper Section V-A).
///
/// All ranges are inclusive and sampled uniformly over the integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingRanges {
    /// `WriteLatency` range (paper: 0–5 for the full experiment, 0–10 for the
    /// WriteLatency-only experiment).
    pub write_latency: (u32, u32),
    /// Number of cycles per used port in the `PortMap` (paper: 0–2).
    pub port_cycles: (u32, u32),
    /// Number of randomly selected ports that receive cycles (paper: 0–2).
    pub ports_used: (u32, u32),
    /// `ReadAdvanceCycles` range (paper: 0–5).
    pub read_advance: (u32, u32),
    /// `NumMicroOps` range (paper: 1–10).
    pub num_micro_ops: (u32, u32),
    /// `DispatchWidth` range (paper: 1–10).
    pub dispatch_width: (u32, u32),
    /// `ReorderBufferSize` range (paper: 50–250).
    pub reorder_buffer: (u32, u32),
}

impl Default for SamplingRanges {
    fn default() -> Self {
        SamplingRanges {
            write_latency: (0, 5),
            port_cycles: (0, 2),
            ports_used: (0, 2),
            read_advance: (0, 5),
            num_micro_ops: (1, 10),
            dispatch_width: (1, 10),
            reorder_buffer: (50, 250),
        }
    }
}

/// Which parameters DiffTune learns; everything not learned keeps its default
/// (expert-provided) value, both in the sampled tables used for surrogate
/// training and in the final extracted table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Learn the global `DispatchWidth`.
    pub dispatch_width: bool,
    /// Learn the global `ReorderBufferSize`.
    pub reorder_buffer: bool,
    /// Learn per-instruction `NumMicroOps`.
    pub num_micro_ops: bool,
    /// Learn per-instruction `WriteLatency`.
    pub write_latency: bool,
    /// Learn per-instruction `ReadAdvanceCycles`.
    pub read_advance: bool,
    /// Learn per-instruction `PortMap` entries.
    pub port_map: bool,
    /// Sampling distributions for the learned parameters.
    pub sampling: SamplingRanges,
}

impl ParamSpec {
    /// The full llvm-mca parameter set from Table II (the paper's main
    /// experiment: everything is learned from scratch).
    pub fn llvm_mca() -> Self {
        ParamSpec {
            dispatch_width: true,
            reorder_buffer: true,
            num_micro_ops: true,
            write_latency: true,
            read_advance: true,
            port_map: true,
            sampling: SamplingRanges::default(),
        }
    }

    /// The WriteLatency-only experiment from Section VI-B: only each
    /// instruction's `WriteLatency` is learned (sampled 0–10); every other
    /// parameter keeps its default value.
    pub fn write_latency_only() -> Self {
        ParamSpec {
            dispatch_width: false,
            reorder_buffer: false,
            num_micro_ops: false,
            write_latency: true,
            read_advance: false,
            port_map: false,
            sampling: SamplingRanges {
                write_latency: (0, 10),
                ..SamplingRanges::default()
            },
        }
    }

    /// The llvm_sim experiment from Appendix A: `WriteLatency` and the
    /// `PortMap` (interpreted as micro-ops per port) are learned.
    pub fn llvm_sim() -> Self {
        ParamSpec {
            dispatch_width: false,
            reorder_buffer: false,
            num_micro_ops: false,
            write_latency: true,
            read_advance: false,
            port_map: true,
            sampling: SamplingRanges::default(),
        }
    }

    /// True if any per-instruction parameter is learned.
    pub fn learns_per_inst(&self) -> bool {
        self.num_micro_ops || self.write_latency || self.read_advance || self.port_map
    }

    /// True if any global parameter is learned.
    pub fn learns_global(&self) -> bool {
        self.dispatch_width || self.reorder_buffer
    }

    /// Number of learned scalar parameters for a table covering `num_opcodes`
    /// opcodes (used for reporting the size of the search problem).
    pub fn num_learned(&self, num_opcodes: usize) -> usize {
        let mut per_inst = 0;
        if self.num_micro_ops {
            per_inst += 1;
        }
        if self.write_latency {
            per_inst += 1;
        }
        if self.read_advance {
            per_inst += difftune_sim::NUM_READ_ADVANCE;
        }
        if self.port_map {
            per_inst += difftune_sim::NUM_PORTS;
        }
        let mut total = per_inst * num_opcodes;
        if self.dispatch_width {
            total += 1;
        }
        if self.reorder_buffer {
            total += 1;
        }
        total
    }
}

impl Default for ParamSpec {
    fn default() -> Self {
        ParamSpec::llvm_mca()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::OpcodeRegistry;

    #[test]
    fn full_spec_learns_everything() {
        let spec = ParamSpec::llvm_mca();
        assert!(spec.learns_global() && spec.learns_per_inst());
        let n = OpcodeRegistry::global().len();
        // Table II: 15 per-instruction parameters plus 2 global ones. The paper
        // reports 11265 parameters over 837 opcodes (≈ 15 × 751 opcodes seen);
        // our registry gives the same order of magnitude.
        assert_eq!(spec.num_learned(n), 15 * n + 2);
        assert!(spec.num_learned(n) > 9_000);
    }

    #[test]
    fn write_latency_only_spec_matches_section_6b() {
        let spec = ParamSpec::write_latency_only();
        assert!(spec.write_latency);
        assert!(!spec.port_map && !spec.num_micro_ops && !spec.dispatch_width);
        assert_eq!(spec.sampling.write_latency, (0, 10));
        let n = OpcodeRegistry::global().len();
        assert_eq!(spec.num_learned(n), n);
    }

    #[test]
    fn llvm_sim_spec_learns_latency_and_ports() {
        let spec = ParamSpec::llvm_sim();
        assert!(spec.write_latency && spec.port_map);
        assert!(!spec.learns_global());
    }
}
