//! Run observation: stages and streamed progress events.

use serde::{Deserialize, Serialize};

/// The stages of the DiffTune pipeline (Figure 1), in execution order.
///
/// A [`Session`](crate::Session) is always *in* exactly one stage: the next
/// one it will run. `Finished` means every stage has completed and only
/// [`finish`](crate::Session::finish) remains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Step 2: build the simulated dataset `D̂ = {(θ, x, f(θ, x))}`.
    GenerateDataset,
    /// Step 3: train the surrogate to mimic the simulator (Equation 2).
    FitSurrogate,
    /// Step 4: optimize the parameter table through the frozen surrogate
    /// (Equation 3).
    OptimizeTable,
    /// All stages have run; the result can be extracted.
    Finished,
}

impl Stage {
    /// The stage that runs after this one (`Finished` is terminal).
    pub fn next(self) -> Stage {
        match self {
            Stage::GenerateDataset => Stage::FitSurrogate,
            Stage::FitSurrogate => Stage::OptimizeTable,
            Stage::OptimizeTable | Stage::Finished => Stage::Finished,
        }
    }
}

/// A progress event streamed from a running [`Session`](crate::Session).
///
/// Long runs emit these continuously so callers can log, plot, or abort
/// instead of waiting blind for the final result.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A pipeline stage is about to run.
    StageStarted {
        /// The stage that is starting.
        stage: Stage,
    },
    /// A pipeline stage completed.
    StageFinished {
        /// The stage that finished.
        stage: Stage,
    },
    /// Simulated-dataset generation progress.
    DatasetProgress {
        /// Samples generated so far.
        generated: usize,
        /// Total samples this run will generate.
        total: usize,
    },
    /// One surrogate-training epoch finished (Equation 2).
    SurrogateEpoch {
        /// Zero-based epoch index.
        epoch: usize,
        /// Total surrogate epochs.
        epochs: usize,
        /// Mean per-sample training loss (MAPE) over the epoch.
        mean_loss: f64,
    },
    /// One parameter-table batch was applied (Equation 3).
    TableBatch {
        /// Zero-based epoch index.
        epoch: usize,
        /// Zero-based batch index within the epoch.
        batch: usize,
        /// Total batches per epoch.
        batches: usize,
        /// Mean per-sample loss over the batch.
        mean_loss: f64,
    },
    /// One parameter-table epoch finished (Equation 3).
    TableEpoch {
        /// Zero-based epoch index.
        epoch: usize,
        /// Total table epochs.
        epochs: usize,
        /// Mean per-sample loss over the epoch.
        mean_loss: f64,
    },
}

/// Receives [`ProgressEvent`]s from a running session.
///
/// Every closure `FnMut(&ProgressEvent)` is an observer, so the common case
/// is `session.add_observer(Box::new(|event| println!("{event:?}")))`.
pub trait RunObserver {
    /// Called synchronously for each event, in order.
    fn on_event(&mut self, event: &ProgressEvent);
}

impl<F: FnMut(&ProgressEvent)> RunObserver for F {
    fn on_event(&mut self, event: &ProgressEvent) {
        self(event)
    }
}

/// An observer that records every event it sees (useful in tests and for
/// post-run inspection).
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// The events received so far, in order.
    pub events: Vec<ProgressEvent>,
}

impl RunObserver for RecordingObserver {
    fn on_event(&mut self, event: &ProgressEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_is_the_pipeline_order() {
        assert_eq!(Stage::GenerateDataset.next(), Stage::FitSurrogate);
        assert_eq!(Stage::FitSurrogate.next(), Stage::OptimizeTable);
        assert_eq!(Stage::OptimizeTable.next(), Stage::Finished);
        assert_eq!(Stage::Finished.next(), Stage::Finished);
    }

    #[test]
    fn stages_round_trip_through_json() {
        for stage in [
            Stage::GenerateDataset,
            Stage::FitSurrogate,
            Stage::OptimizeTable,
            Stage::Finished,
        ] {
            let json = serde_json::to_string(&stage).unwrap();
            assert_eq!(serde_json::from_str::<Stage>(&json).unwrap(), stage);
        }
    }

    #[test]
    fn closures_are_observers() {
        let mut count = 0usize;
        {
            let mut observer = |_: &ProgressEvent| count += 1;
            observer.on_event(&ProgressEvent::StageStarted {
                stage: Stage::GenerateDataset,
            });
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn recording_observer_keeps_events_in_order() {
        let mut observer = RecordingObserver::default();
        observer.on_event(&ProgressEvent::StageStarted {
            stage: Stage::GenerateDataset,
        });
        observer.on_event(&ProgressEvent::DatasetProgress {
            generated: 10,
            total: 20,
        });
        assert_eq!(observer.events.len(), 2);
        assert_eq!(
            observer.events[0],
            ProgressEvent::StageStarted {
                stage: Stage::GenerateDataset
            }
        );
    }
}
