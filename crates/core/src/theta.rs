//! The trainable parameter table θ.
//!
//! During optimization the parameter table is a flat vector of
//! *unconstrained* floats in "offset space": each entry stores
//! `value − lower_bound` and may drift negative; the surrogate sees
//! `|θ| / scale` (matching how sampled tables are encoded during surrogate
//! training), and extraction back into the simulator computes
//! `round(|θ|) + lower_bound` (Section IV of the paper).

use difftune_isa::OpcodeId;
use difftune_sim::{ParamBounds, SimParams, NUM_PORTS, NUM_READ_ADVANCE};
use difftune_surrogate::{GLOBAL_SCALES, PER_INST_SCALES};
use difftune_tensor::{Graph, Tensor, Var};
use serde::{Deserialize, Serialize};

use crate::spec::ParamSpec;

/// Number of per-instruction entries in the flat layout.
const PER_INST: usize = 2 + NUM_READ_ADVANCE + NUM_PORTS;

/// The trainable, unconstrained parameter table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThetaTable {
    values: Vec<f32>,
}

impl ThetaTable {
    /// Builds a θ table from an integer parameter table (subtracting lower
    /// bounds).
    pub fn from_table(table: &SimParams) -> Self {
        let mut values = Vec::with_capacity(2 + table.num_opcodes() * PER_INST);
        values.push(table.dispatch_width.saturating_sub(1) as f32);
        values.push(table.reorder_buffer_size.saturating_sub(1) as f32);
        for entry in &table.per_inst {
            values.push(entry.num_micro_ops.saturating_sub(1) as f32);
            values.push(entry.write_latency as f32);
            values.extend(entry.read_advance_cycles.iter().map(|&v| v as f32));
            values.extend(entry.port_map.iter().map(|&v| v as f32));
        }
        ThetaTable { values }
    }

    /// Reconstructs θ from a tensor produced by [`ThetaTable::tensor`] (e.g.
    /// after optimizer updates).
    pub fn from_tensor(tensor: &Tensor) -> Self {
        ThetaTable {
            values: tensor.data().to_vec(),
        }
    }

    /// The flat values as a tensor, ready to be registered as a trainable
    /// parameter.
    pub fn tensor(&self) -> Tensor {
        Tensor::vector(self.values.clone())
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of opcodes covered.
    pub fn num_opcodes(&self) -> usize {
        (self.values.len() - 2) / PER_INST
    }

    /// Extracts the integer simulator parameters: `round(|θ|) + lower_bound`.
    pub fn to_sim_params(&self) -> SimParams {
        let bounds = ParamBounds::default();
        let flat: Vec<f64> = self
            .values
            .iter()
            .enumerate()
            .map(|(index, &value)| {
                let magnitude = f64::from(value.abs());
                magnitude + f64::from(lower_bound_of(index, &bounds))
            })
            .collect();
        SimParams::from_flat(&flat, &bounds)
    }

    /// Resets every entry that the spec does *not* learn back to the value it
    /// has in `defaults` (in offset space). Called after each optimizer step so
    /// frozen parameters stay at their expert-provided values.
    pub fn freeze_unlearned(&mut self, spec: &ParamSpec, defaults: &ThetaTable) {
        assert_eq!(
            self.values.len(),
            defaults.values.len(),
            "mismatched table sizes"
        );
        if !spec.dispatch_width {
            self.values[0] = defaults.values[0];
        }
        if !spec.reorder_buffer {
            self.values[1] = defaults.values[1];
        }
        let num_opcodes = self.num_opcodes();
        for opcode in 0..num_opcodes {
            let base = 2 + opcode * PER_INST;
            if !spec.num_micro_ops {
                self.values[base] = defaults.values[base];
            }
            if !spec.write_latency {
                self.values[base + 1] = defaults.values[base + 1];
            }
            if !spec.read_advance {
                for k in 0..NUM_READ_ADVANCE {
                    self.values[base + 2 + k] = defaults.values[base + 2 + k];
                }
            }
            if !spec.port_map {
                for k in 0..NUM_PORTS {
                    self.values[base + 2 + NUM_READ_ADVANCE + k] =
                        defaults.values[base + 2 + NUM_READ_ADVANCE + k];
                }
            }
        }
    }

    /// Clamps every entry's magnitude to the top of the spec's sampling range
    /// (in offset space).
    ///
    /// The surrogate is only trained on parameter tables drawn from the
    /// sampling distributions, so its predictions (and therefore its gradients)
    /// are unreliable far outside that region — the extrapolation issue the
    /// paper discusses in Section VII. Keeping θ inside the sampled region
    /// during optimization avoids chasing those unreliable gradients.
    pub fn clamp_to_sampling(&mut self, spec: &ParamSpec) {
        let ranges = &spec.sampling;
        let clamp = |value: &mut f32, max_offset: f32| {
            if value.abs() > max_offset {
                *value = value.signum() * max_offset;
            }
        };
        clamp(
            &mut self.values[0],
            (ranges.dispatch_width.1.saturating_sub(1)) as f32,
        );
        clamp(
            &mut self.values[1],
            (ranges.reorder_buffer.1.saturating_sub(1)) as f32,
        );
        let num_opcodes = self.num_opcodes();
        for opcode in 0..num_opcodes {
            let base = 2 + opcode * PER_INST;
            clamp(
                &mut self.values[base],
                (ranges.num_micro_ops.1.saturating_sub(1)) as f32,
            );
            clamp(&mut self.values[base + 1], ranges.write_latency.1 as f32);
            for k in 0..NUM_READ_ADVANCE {
                clamp(&mut self.values[base + 2 + k], ranges.read_advance.1 as f32);
            }
            for k in 0..NUM_PORTS {
                clamp(
                    &mut self.values[base + 2 + NUM_READ_ADVANCE + k],
                    ranges.port_cycles.1 as f32,
                );
            }
        }
    }

    /// Builds the surrogate input features for a block from a θ leaf already
    /// registered in the graph: one per-instruction feature `Var` per opcode in
    /// `opcodes`, plus the global feature `Var`.
    ///
    /// The encoding (`|θ| / scale`) matches
    /// [`difftune_surrogate::param_features`] exactly, so the surrogate sees
    /// the same representation during training and during parameter-table
    /// optimization.
    pub fn feature_vars(
        graph: &mut Graph<'_>,
        theta: Var,
        opcodes: &[OpcodeId],
    ) -> (Vec<Var>, Var) {
        let inv_inst_scales = graph.input(Tensor::vector(
            PER_INST_SCALES.iter().map(|s| 1.0 / s).collect(),
        ));
        let inv_global_scales = graph.input(Tensor::vector(
            GLOBAL_SCALES.iter().map(|s| 1.0 / s).collect(),
        ));

        let global_raw = graph.slice(theta, 0, 2);
        let global_abs = graph.abs(global_raw);
        let global = graph.mul(global_abs, inv_global_scales);

        let per_inst = opcodes
            .iter()
            .map(|opcode| {
                let start = 2 + opcode.index() * PER_INST;
                let raw = graph.slice(theta, start, PER_INST);
                let magnitude = graph.abs(raw);
                graph.mul(magnitude, inv_inst_scales)
            })
            .collect();
        (per_inst, global)
    }
}

/// The lower bound of the flat-layout entry at `index`.
fn lower_bound_of(index: usize, bounds: &ParamBounds) -> u32 {
    match index {
        0 => bounds.dispatch_width_min,
        1 => bounds.reorder_buffer_min,
        _ => {
            let offset = (index - 2) % PER_INST;
            match offset {
                0 => bounds.num_micro_ops_min,
                1 => bounds.write_latency_min,
                k if k < 2 + NUM_READ_ADVANCE => bounds.read_advance_min,
                _ => bounds.port_map_min,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::OpcodeRegistry;
    use difftune_surrogate::param_features;
    use difftune_tensor::Params;

    #[test]
    fn round_trip_preserves_integer_tables() {
        let mut table = SimParams::uniform_default();
        table.dispatch_width = 6;
        table.reorder_buffer_size = 144;
        table.per_inst[5].write_latency = 4;
        table.per_inst[5].num_micro_ops = 3;
        table.per_inst[7].port_map[9] = 2;
        table.per_inst[7].read_advance_cycles[2] = 5;
        let theta = ThetaTable::from_table(&table);
        assert_eq!(theta.to_sim_params(), table);
        assert_eq!(theta.num_opcodes(), table.num_opcodes());
    }

    #[test]
    fn extraction_takes_absolute_value_and_adds_bounds() {
        let table = SimParams::uniform_default();
        let mut theta = ThetaTable::from_table(&table);
        // Drive some entries negative, as gradient descent may do.
        theta.values[0] = -2.4; // dispatch width offset
        theta.values[3] = -1.7; // write latency of opcode 0
        let extracted = theta.to_sim_params();
        assert_eq!(extracted.dispatch_width, 1 + 2); // round(2.4) + 1
        assert_eq!(extracted.per_inst[0].write_latency, 2); // round(1.7)
    }

    #[test]
    fn freezing_restores_unlearned_entries() {
        let defaults = SimParams::uniform_default();
        let default_theta = ThetaTable::from_table(&defaults);
        let mut theta = default_theta.clone();
        for value in &mut theta.values {
            *value += 3.0;
        }
        theta.freeze_unlearned(&ParamSpec::write_latency_only(), &default_theta);
        // Write latencies stay perturbed, everything else is restored.
        assert_eq!(theta.values[0], default_theta.values[0]);
        assert_eq!(theta.values[1], default_theta.values[1]);
        assert_eq!(
            theta.values[2], default_theta.values[2],
            "num_micro_ops restored"
        );
        assert_eq!(
            theta.values[3],
            default_theta.values[3] + 3.0,
            "write latency kept"
        );
        assert_eq!(
            theta.values[4], default_theta.values[4],
            "read advance restored"
        );
    }

    #[test]
    fn feature_vars_match_the_surrogate_training_encoding() {
        let registry = OpcodeRegistry::global();
        let mut table = SimParams::uniform_default();
        let opcode = registry.by_name("ADD32mr").unwrap();
        table.inst_mut(opcode).write_latency = 5;
        table.inst_mut(opcode).num_micro_ops = 4;
        table.inst_mut(opcode).port_map[2] = 2;
        table.dispatch_width = 7;
        table.reorder_buffer_size = 101;

        // Reference encoding used when training the surrogate on sampled tables.
        let expected_inst = param_features(table.inst(opcode));
        let expected_global = difftune_surrogate::global_features(&table);

        // Graph encoding used when optimizing θ through the frozen surrogate.
        let theta = ThetaTable::from_table(&table);
        let mut params = Params::new();
        let theta_id = params.add("theta", theta.tensor());
        let mut graph = Graph::new(&params);
        let theta_var = graph.param(theta_id);
        let (inst_features, global) = ThetaTable::feature_vars(&mut graph, theta_var, &[opcode]);

        for (a, b) in graph
            .value(inst_features[0])
            .iter()
            .zip(expected_inst.data())
        {
            assert!(
                (a - b).abs() < 1e-6,
                "per-instruction encoding mismatch: {a} vs {b}"
            );
        }
        for (a, b) in graph.value(global).iter().zip(expected_global.data()) {
            assert!((a - b).abs() < 1e-6, "global encoding mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn gradients_flow_through_feature_vars_to_theta() {
        let registry = OpcodeRegistry::global();
        let opcode = registry.by_name("XOR32rr").unwrap();
        let theta = ThetaTable::from_table(&SimParams::uniform_default());
        let mut params = Params::new();
        let theta_id = params.add("theta", theta.tensor());
        let mut graph = Graph::new(&params);
        let theta_var = graph.param(theta_id);
        let (features, global) = ThetaTable::feature_vars(&mut graph, theta_var, &[opcode]);
        let combined = graph.concat(&[features[0], global]);
        let loss = graph.sum(combined);
        let mut grads = difftune_tensor::Grads::new(&params);
        graph.backward(loss, &mut grads);
        let grad = grads.get(theta_id).expect("theta must receive a gradient");
        let nonzero = grad.data().iter().filter(|v| **v != 0.0).count();
        // 15 per-instruction entries + 2 global entries receive gradient.
        assert_eq!(nonzero, 17);
    }
}
