//! Typed identities for prediction backends.
//!
//! Every layer of the serving stack — the matrix sweep, `difftune-serve`,
//! `difftune-router`, and their binaries — names backends with the same
//! colon-separated grammar:
//!
//! ```text
//! <source>:<simulator>:<uarch>[:<spec>]     e.g. matrix:mca:haswell:llvm_mca
//! ```
//!
//! This module is the single home of that grammar. [`SimulatorKind`],
//! [`SpecKind`], and [`Source`] are the typed components (each with its
//! `key()`/`parse()` pair), and [`BackendId`] composes them with a
//! [`Display`](std::fmt::Display)/[`FromStr`](std::str::FromStr) round trip
//! that `tests/properties.rs` property-tests. Downstream crates re-export
//! these types (`difftune_bench::matrix`, `difftune_serve::backend`), so the
//! id a request parses to is the id the registry resolves and the router
//! hashes — by construction, not by parallel string code.

use difftune_cpu::Microarch;
use difftune_sim::{McaSimulator, Simulator, UopSimulator};

use crate::spec::ParamSpec;

/// The simulator families the matrix sweeps and the servers answer for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimulatorKind {
    /// The llvm-mca-style instruction-level simulator
    /// ([`McaSimulator`]).
    Mca,
    /// The llvm_sim-style micro-op-level simulator ([`UopSimulator`]).
    Uop,
}

impl SimulatorKind {
    /// Both simulator families, in cell-key order.
    pub const ALL: [SimulatorKind; 2] = [SimulatorKind::Mca, SimulatorKind::Uop];

    /// The short name used in cell keys and file names.
    pub fn key(self) -> &'static str {
        match self {
            SimulatorKind::Mca => "mca",
            SimulatorKind::Uop => "uop",
        }
    }

    /// Instantiates the simulator.
    pub fn build(self) -> Box<dyn Simulator> {
        match self {
            SimulatorKind::Mca => Box::new(McaSimulator::default()),
            SimulatorKind::Uop => Box::new(UopSimulator::default()),
        }
    }

    /// Parses a cell-key component (`mca`, `llvm-mca`, `uop`, `llvm_sim`).
    pub fn parse(raw: &str) -> Result<SimulatorKind, String> {
        match raw.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "mca" | "llvmmca" => Ok(SimulatorKind::Mca),
            "uop" | "llvmsim" => Ok(SimulatorKind::Uop),
            other => Err(format!(
                "unknown simulator `{other}`: valid simulators are \"mca\" (llvm-mca) and \
                 \"uop\" (llvm_sim)"
            )),
        }
    }
}

/// The parameter specifications the matrix sweeps (the three experiments the
/// paper tunes: Table II, Section VI-B, and Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpecKind {
    /// The full llvm-mca parameter set ([`ParamSpec::llvm_mca`]).
    LlvmMca,
    /// WriteLatency only ([`ParamSpec::write_latency_only`]).
    WriteLatencyOnly,
    /// WriteLatency + PortMap ([`ParamSpec::llvm_sim`]).
    LlvmSim,
}

impl SpecKind {
    /// All specs, in cell-key order.
    pub const ALL: [SpecKind; 3] = [
        SpecKind::LlvmMca,
        SpecKind::WriteLatencyOnly,
        SpecKind::LlvmSim,
    ];

    /// The short name used in cell keys and file names.
    pub fn key(self) -> &'static str {
        match self {
            SpecKind::LlvmMca => "llvm_mca",
            SpecKind::WriteLatencyOnly => "write_latency_only",
            SpecKind::LlvmSim => "llvm_sim",
        }
    }

    /// The parameter specification for this kind.
    pub fn spec(self) -> ParamSpec {
        match self {
            SpecKind::LlvmMca => ParamSpec::llvm_mca(),
            SpecKind::WriteLatencyOnly => ParamSpec::write_latency_only(),
            SpecKind::LlvmSim => ParamSpec::llvm_sim(),
        }
    }

    /// Parses a cell-key component.
    pub fn parse(raw: &str) -> Result<SpecKind, String> {
        match raw.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "llvmmca" | "full" => Ok(SpecKind::LlvmMca),
            "writelatencyonly" | "writelatency" => Ok(SpecKind::WriteLatencyOnly),
            "llvmsim" => Ok(SpecKind::LlvmSim),
            other => Err(format!(
                "unknown spec `{other}`: valid specs are \"llvm_mca\", \
                 \"write_latency_only\", and \"llvm_sim\""
            )),
        }
    }
}

/// Where a backend's prediction source came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Source {
    /// Expert-documentation defaults.
    Default,
    /// A finished session checkpoint's learned θ.
    Checkpoint,
    /// A `difftune-matrix` cell record's learned table.
    Matrix,
    /// A trained surrogate artifact (`SURROGATE_*.json`) answering with one
    /// forward pass instead of a simulator run.
    Surrogate,
    /// The three-tier prediction policy (LRU → surrogate → simulator)
    /// layered over a cell's learned table and optional surrogate.
    Policy,
}

impl Source {
    /// The short name used in backend ids and request `source` fields.
    pub fn key(self) -> &'static str {
        match self {
            Source::Default => "default",
            Source::Checkpoint => "checkpoint",
            Source::Matrix => "matrix",
            Source::Surrogate => "surrogate",
            Source::Policy => "policy",
        }
    }

    /// Parses a request `source` field.
    pub fn parse(raw: &str) -> Result<Source, String> {
        match raw.to_ascii_lowercase().as_str() {
            "default" => Ok(Source::Default),
            "checkpoint" => Ok(Source::Checkpoint),
            "matrix" => Ok(Source::Matrix),
            "surrogate" => Ok(Source::Surrogate),
            "policy" => Ok(Source::Policy),
            other => Err(format!(
                "unknown source `{other}`: valid sources are \"default\", \"checkpoint\", \
                 \"matrix\", \"surrogate\", and \"policy\""
            )),
        }
    }
}

/// A fully qualified backend identity: `<source>:<sim>:<uarch>[:<spec>]`.
///
/// Defaults exist independently of any spec (their id has three segments);
/// learned backends carry the spec they were tuned under. The
/// [`Display`](std::fmt::Display) rendering is the wire format echoed in
/// `/predict` responses and listed by `/backends`, and
/// [`FromStr`](std::str::FromStr) is its exact inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BackendId {
    /// Where the backend's table or model came from.
    pub source: Source,
    /// The simulator family (for surrogates: the family the surrogate mimics).
    pub simulator: SimulatorKind,
    /// The microarchitecture the backend targets.
    pub uarch: Microarch,
    /// The spec a learned backend was tuned under (`None` for defaults).
    pub spec: Option<SpecKind>,
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}",
            self.source.key(),
            self.simulator.key(),
            self.uarch.key()
        )?;
        if let Some(spec) = self.spec {
            write!(f, ":{}", spec.key())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for BackendId {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = raw.split(':').collect();
        let (source, simulator, uarch, spec) = match parts.as_slice() {
            [source, simulator, uarch] => (source, simulator, uarch, None),
            [source, simulator, uarch, spec] => (source, simulator, uarch, Some(spec)),
            _ => {
                return Err(format!(
                    "backend id {raw:?} must have the form SOURCE:SIM:UARCH[:SPEC] \
                     (e.g. matrix:mca:haswell:llvm_mca)"
                ))
            }
        };
        Ok(BackendId {
            source: Source::parse(source)?,
            simulator: SimulatorKind::parse(simulator)?,
            uarch: uarch
                .parse::<Microarch>()
                .map_err(|e| format!("{e} (valid: ivybridge, haswell, skylake, zen2)"))?,
            spec: spec.map(|s| SpecKind::parse(s)).transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_parse_back() {
        let learned = BackendId {
            source: Source::Matrix,
            simulator: SimulatorKind::Mca,
            uarch: Microarch::Haswell,
            spec: Some(SpecKind::LlvmMca),
        };
        assert_eq!(learned.to_string(), "matrix:mca:haswell:llvm_mca");
        assert_eq!("matrix:mca:haswell:llvm_mca".parse(), Ok(learned));

        let default = BackendId {
            source: Source::Default,
            simulator: SimulatorKind::Uop,
            uarch: Microarch::Zen2,
            spec: None,
        };
        assert_eq!(default.to_string(), "default:uop:zen2");
        assert_eq!("default:uop:zen2".parse(), Ok(default));

        let surrogate = BackendId {
            source: Source::Surrogate,
            simulator: SimulatorKind::Uop,
            uarch: Microarch::Haswell,
            spec: Some(SpecKind::LlvmSim),
        };
        assert_eq!(surrogate.to_string(), "surrogate:uop:haswell:llvm_sim");
        assert_eq!("surrogate:uop:haswell:llvm_sim".parse(), Ok(surrogate));

        let policy = BackendId {
            source: Source::Policy,
            simulator: SimulatorKind::Mca,
            uarch: Microarch::Skylake,
            spec: Some(SpecKind::LlvmMca),
        };
        assert_eq!(policy.to_string(), "policy:mca:skylake:llvm_mca");
        assert_eq!("policy:mca:skylake:llvm_mca".parse(), Ok(policy));
    }

    #[test]
    fn malformed_ids_report_the_grammar() {
        let err = "matrix:mca".parse::<BackendId>().unwrap_err();
        assert!(err.contains("SOURCE:SIM:UARCH"), "{err}");
        let err = "s3:mca:haswell:llvm_mca".parse::<BackendId>().unwrap_err();
        assert!(err.contains("surrogate"), "{err}");
        let err = "matrix:mca:pentium:llvm_mca"
            .parse::<BackendId>()
            .unwrap_err();
        assert!(err.contains("haswell"), "{err}");
    }

    #[test]
    fn source_parsing_round_trips_and_rejects_unknowns() {
        for source in [
            Source::Default,
            Source::Checkpoint,
            Source::Matrix,
            Source::Surrogate,
            Source::Policy,
        ] {
            assert_eq!(Source::parse(source.key()), Ok(source));
        }
        assert!(Source::parse("s3").unwrap_err().contains("matrix"));
    }
}
