//! Environment knobs for the driver.
//!
//! `DIFFTUNE_THREADS` selects the worker-thread count for every parallel
//! stage (dataset generation, surrogate training, table optimization).
//! Parsing mirrors `DIFFTUNE_SCALE` in `difftune-bench`: an unrecognized or
//! zero value is reported as a typed [`DiffTuneError::InvalidConfig`] listing
//! the valid values, never silently replaced with a default. Thanks to the
//! deterministic batch engine, the knob only changes wall-clock time — the
//! learned table is bit-identical for every thread count.

use difftune_surrogate::train::MAX_THREADS;

use crate::error::DiffTuneError;
use crate::pipeline::DiffTuneConfig;

/// The environment variable selecting the worker-thread count.
pub const THREADS_ENV_VAR: &str = "DIFFTUNE_THREADS";

/// Reads the `DIFFTUNE_THREADS` knob.
///
/// Returns `0` ("use all available cores") when the variable is unset or
/// empty, and the parsed count otherwise.
///
/// # Errors
///
/// [`DiffTuneError::InvalidConfig`] when the value is not a number, is an
/// explicit `0` (ambiguous — unset already means "all cores"), or exceeds
/// [`MAX_THREADS`]. The message lists the valid values, mirroring
/// `DIFFTUNE_SCALE` parsing.
pub fn threads_from_env() -> Result<usize, DiffTuneError> {
    parse_threads(std::env::var(THREADS_ENV_VAR).ok().as_deref())
}

/// [`threads_from_env`] applied to a configuration: a non-zero knob
/// overrides both the pipeline thread count and the surrogate trainer's.
///
/// # Errors
///
/// Everything [`threads_from_env`] reports.
pub fn apply_env_threads(config: &mut DiffTuneConfig) -> Result<(), DiffTuneError> {
    let threads = threads_from_env()?;
    if threads != 0 {
        config.threads = threads;
        config.surrogate_train.threads = threads;
    }
    Ok(())
}

/// The pure parser behind [`threads_from_env`] (testable without touching
/// process environment).
fn parse_threads(raw: Option<&str>) -> Result<usize, DiffTuneError> {
    let invalid = |raw: &str, why: &str| DiffTuneError::InvalidConfig {
        field: "DIFFTUNE_THREADS",
        message: format!(
            "{why} (got {raw:?}): valid values are 1..={MAX_THREADS}, or unset/empty for all cores"
        ),
    };
    let Some(raw) = raw else {
        return Ok(0);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(0);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(invalid(raw, "0 is not a worker count")),
        Ok(count) if count > MAX_THREADS => Err(invalid(raw, "worker count is too large")),
        Ok(count) => Ok(count),
        Err(_) => Err(invalid(raw, "not a number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_empty_mean_all_cores() {
        assert_eq!(parse_threads(None), Ok(0));
        assert_eq!(parse_threads(Some("")), Ok(0));
        assert_eq!(parse_threads(Some("   ")), Ok(0));
    }

    #[test]
    fn valid_counts_parse() {
        assert_eq!(parse_threads(Some("1")), Ok(1));
        assert_eq!(parse_threads(Some(" 4 ")), Ok(4));
        assert_eq!(
            parse_threads(Some(&MAX_THREADS.to_string())),
            Ok(MAX_THREADS)
        );
    }

    #[test]
    fn invalid_values_are_typed_errors_listing_valid_values() {
        for bad in ["0", "-2", "four", "1.5", "9999999"] {
            let error = parse_threads(Some(bad)).unwrap_err();
            let DiffTuneError::InvalidConfig { field, message } = &error else {
                panic!("expected InvalidConfig for {bad:?}, got {error:?}");
            };
            assert_eq!(*field, "DIFFTUNE_THREADS");
            assert!(
                message.contains(&bad.to_string()) || message.contains(bad),
                "{message:?} must echo the offending value {bad:?}"
            );
            assert!(
                message.contains("all cores"),
                "{message:?} must explain the unset default"
            );
        }
    }

    #[test]
    fn env_override_applies_to_both_thread_knobs() {
        // One test touches the env var sequentially, so parallel tests never
        // observe a transient value.
        std::env::remove_var(THREADS_ENV_VAR);
        assert_eq!(threads_from_env(), Ok(0));
        let mut config = DiffTuneConfig::default();
        apply_env_threads(&mut config).unwrap();
        assert_eq!(config.threads, 0, "unset must not override the config");

        std::env::set_var(THREADS_ENV_VAR, "3");
        assert_eq!(threads_from_env(), Ok(3));
        apply_env_threads(&mut config).unwrap();
        assert_eq!(config.threads, 3);
        assert_eq!(config.surrogate_train.threads, 3);

        std::env::set_var(THREADS_ENV_VAR, "zero");
        assert!(threads_from_env().is_err());
        std::env::remove_var(THREADS_ENV_VAR);
    }
}
