//! Simulated dataset generation (step 2 of Figure 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use difftune_isa::BasicBlock;
use difftune_sim::{SimParams, Simulator};
use difftune_surrogate::train::TrainSample;
use difftune_surrogate::{block_param_features, global_features, Vocab};

use crate::error::DiffTuneError;
use crate::sampling::sample_table;
use crate::spec::ParamSpec;

/// Size of the fixed generation ranges. The sample space is partitioned into
/// ranges of this many samples, each with its own rng stream seeded
/// `seed + range.start`, *regardless of the worker count* — so the generated
/// dataset is bit-identical for every `threads` value (and every machine),
/// and workers merely pick up ranges. A run of up to one range reduces to a
/// single stream seeded `seed`.
pub const GENERATION_RANGE: usize = 512;

/// Generates the simulated dataset `D̂ = {(θ, x, f(θ, x))}` used to train the
/// surrogate (Equation 2).
///
/// For each of `size` samples, a block is drawn uniformly from `blocks` (so a
/// multiple of the training-set size corresponds to the paper's "10× the
/// training set" construction), a parameter table is sampled from the spec's
/// distributions, the simulator is run, and the triple is encoded as a
/// [`TrainSample`]. Generation is parallelized across threads by handing out
/// fixed [`GENERATION_RANGE`]-sized ranges (each seeded `seed + range.start`),
/// so the dataset does not depend on the thread count. Because every sample
/// draws its own parameter table (the paper's i.i.d. `(θ, x)` construction),
/// there is no shared-table batch to hand to [`Simulator::predict_batch`];
/// parallelism comes from partitioning the sample range instead.
///
/// # Errors
///
/// [`DiffTuneError::EmptyTrainSet`] when `blocks` is empty.
pub fn generate_simulated_dataset(
    simulator: &dyn Simulator,
    spec: &ParamSpec,
    defaults: &SimParams,
    blocks: &[BasicBlock],
    size: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<TrainSample>, DiffTuneError> {
    generate_simulated_dataset_observed(
        simulator,
        spec,
        defaults,
        blocks,
        size,
        seed,
        threads,
        &mut |_, _| {},
    )
}

/// [`generate_simulated_dataset`] with a progress callback: `progress` is
/// called with `(generated_so_far, total)` as chunks of samples land, so long
/// generations can stream telemetry (the session driver forwards these as
/// [`ProgressEvent::DatasetProgress`](crate::ProgressEvent::DatasetProgress)).
///
/// The generated dataset is identical to [`generate_simulated_dataset`]'s for
/// the same `seed`, whatever the thread count — neither observation nor
/// parallelism changes the sample stream.
///
/// # Errors
///
/// [`DiffTuneError::EmptyTrainSet`] when `blocks` is empty.
#[allow(clippy::too_many_arguments)] // mirrors generate_simulated_dataset plus the callback
pub fn generate_simulated_dataset_observed(
    simulator: &dyn Simulator,
    spec: &ParamSpec,
    defaults: &SimParams,
    blocks: &[BasicBlock],
    size: usize,
    seed: u64,
    threads: usize,
    progress: &mut dyn FnMut(usize, usize),
) -> Result<Vec<TrainSample>, DiffTuneError> {
    if blocks.is_empty() {
        return Err(DiffTuneError::EmptyTrainSet);
    }
    let vocab = Vocab::new();
    let tokenized: Vec<_> = blocks.iter().map(|b| vocab.tokenize_block(b)).collect();

    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    // Generates one fixed range's samples from its own rng stream. Range
    // boundaries and seeds depend only on `size`, never on the worker count,
    // so the dataset is bit-identical for every `threads` value.
    let generate_range = |range: std::ops::Range<usize>| -> Vec<TrainSample> {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(range.start as u64));
        let mut out = Vec::with_capacity(range.len());
        for _ in range {
            // Draw a block (uniformly at random) and a parameter table.
            let block_index = rng.gen_range(0..blocks.len());
            let table = sample_table(&mut rng, spec, defaults);
            let target = simulator.predict(&table, &blocks[block_index]);
            let block = tokenized[block_index].clone();
            let per_inst_features = Some(block_param_features(&table, &block));
            let global = Some(global_features(&table));
            out.push(TrainSample {
                block,
                per_inst_features,
                global_features: global,
                target,
            });
        }
        out
    };

    let ranges: Vec<std::ops::Range<usize>> = (0..size)
        .step_by(GENERATION_RANGE)
        .map(|start| start..(start + GENERATION_RANGE).min(size))
        .collect();
    let workers = threads.min(ranges.len()).max(1);

    let samples = if workers <= 1 {
        // Serial path: the same ranges, processed in order on this thread.
        let mut out = Vec::with_capacity(size);
        for range in ranges {
            out.extend(generate_range(range));
            progress(out.len(), size);
        }
        out
    } else {
        // Parallel path: distribute contiguous runs of ranges across workers;
        // results are concatenated in range order, so the stream is the same
        // one the serial path produces.
        let per_worker = ranges.len().div_ceil(workers);
        let generate_range = &generate_range;
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .chunks(per_worker)
                .map(|worker_ranges| {
                    scope.spawn(move || -> Vec<TrainSample> {
                        let mut out = Vec::new();
                        for range in worker_ranges {
                            out.extend(generate_range(range.clone()));
                        }
                        out
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(size);
            for handle in handles {
                out.extend(handle.join().expect("dataset worker panicked"));
                progress(out.len(), size);
            }
            out
        })
    };
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_sim::McaSimulator;

    fn blocks() -> Vec<BasicBlock> {
        [
            "addq %rax, %rbx",
            "imulq %rbx, %rcx\naddq %rcx, %rax",
            "movq (%rdi), %rax\naddq %rax, %rbx",
        ]
        .iter()
        .map(|t| t.parse().unwrap())
        .collect()
    }

    #[test]
    fn generates_the_requested_number_of_samples() {
        let sim = McaSimulator::new(16);
        let data = generate_simulated_dataset(
            &sim,
            &ParamSpec::llvm_mca(),
            &SimParams::uniform_default(),
            &blocks(),
            100,
            0,
            2,
        )
        .unwrap();
        assert_eq!(data.len(), 100);
        assert!(data.iter().all(|s| s.target >= 0.0 && s.target.is_finite()));
        assert!(data
            .iter()
            .all(|s| s.per_inst_features.as_ref().unwrap().len() == s.block.len()));
    }

    #[test]
    fn targets_come_from_the_simulator_under_the_sampled_table() {
        // With a spec that learns nothing, every sampled table equals the
        // defaults, so every target must equal the simulator's default
        // prediction.
        let sim = McaSimulator::new(16);
        let spec = ParamSpec {
            dispatch_width: false,
            reorder_buffer: false,
            num_micro_ops: false,
            write_latency: false,
            read_advance: false,
            port_map: false,
            ..ParamSpec::llvm_mca()
        };
        let defaults = SimParams::uniform_default();
        let blocks = blocks();
        let data = generate_simulated_dataset(&sim, &spec, &defaults, &blocks, 30, 1, 1).unwrap();
        for sample in &data {
            let matching = blocks.iter().any(|b| {
                (sim.predict(&defaults, b) - sample.target).abs() < 1e-12
                    && Vocab::new().tokenize_block(b) == sample.block
            });
            assert!(
                matching,
                "target should be the default-parameter prediction of its block"
            );
        }
    }

    #[test]
    fn generation_is_bit_identical_for_every_thread_count() {
        let sim = McaSimulator::new(16);
        let spec = ParamSpec::llvm_mca();
        let defaults = SimParams::uniform_default();
        let blocks = blocks();
        // Larger than one GENERATION_RANGE so several ranges exist.
        let size = GENERATION_RANGE * 2 + 77;
        let serial =
            generate_simulated_dataset(&sim, &spec, &defaults, &blocks, size, 9, 1).unwrap();
        for threads in [2, 3, 8] {
            let parallel =
                generate_simulated_dataset(&sim, &spec, &defaults, &blocks, size, 9, threads)
                    .unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.block, b.block, "{threads} threads changed the stream");
                assert_eq!(
                    a.target.to_bits(),
                    b.target.to_bits(),
                    "{threads} threads changed a target"
                );
                assert_eq!(a.per_inst_features, b.per_inst_features);
                assert_eq!(a.global_features, b.global_features);
            }
        }
    }

    #[test]
    fn varied_tables_produce_varied_targets_for_the_same_block() {
        let sim = McaSimulator::new(16);
        let single: Vec<BasicBlock> = vec!["imulq %rbx, %rcx\naddq %rcx, %rax".parse().unwrap()];
        let data = generate_simulated_dataset(
            &sim,
            &ParamSpec::llvm_mca(),
            &SimParams::uniform_default(),
            &single,
            50,
            2,
            1,
        )
        .unwrap();
        let distinct: std::collections::HashSet<u64> =
            data.iter().map(|s| s.target.to_bits()).collect();
        assert!(
            distinct.len() > 5,
            "sampling parameter tables must vary the simulated timing"
        );
    }
}
