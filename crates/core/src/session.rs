//! The staged, resumable session API — the supported way to run DiffTune.
//!
//! [`DiffTuneBuilder`] validates a [`DiffTuneConfig`] and the run inputs into
//! a [`Session`], which exposes the paper's pipeline (Figure 1) as explicit
//! stages:
//!
//! 1. [`Session::generate_dataset`] — build the simulated dataset
//!    `D̂ = {(θ, x, f(θ, x))}`;
//! 2. [`Session::fit_surrogate`] — train the surrogate (Equation 2);
//! 3. [`Session::optimize_table`] — gradient descent on θ through the frozen
//!    surrogate (Equation 3);
//! 4. [`Session::finish`] — extract the [`DiffTuneResult`].
//!
//! Between stages the session can be checkpointed ([`Session::checkpoint`])
//! to a serde-backed [`RunCheckpoint`] that round-trips through JSON; a
//! killed run resumes mid-pipeline with [`DiffTuneBuilder::resume`] and
//! produces a bit-identical result. [`RunObserver`]s receive
//! [`ProgressEvent`]s throughout, so long runs stream telemetry instead of
//! going dark.

use difftune_isa::{BasicBlock, OpcodeId};
use difftune_sim::{SimParams, Simulator};
use difftune_surrogate::train::{train_observed, TrainEvent, TrainReport};
use difftune_surrogate::{SurrogateModel, TokenizedBlock, Vocab};
use difftune_tensor::optim::{Adam, Optimizer};
use difftune_tensor::{Batch, Grads, Params, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::DiffTuneError;
use crate::observer::{ProgressEvent, RunObserver, Stage};
use crate::pipeline::{build_surrogate, DiffTuneConfig};
use crate::sampling::sample_table;
use crate::simdata::generate_simulated_dataset_observed;
use crate::spec::ParamSpec;
use crate::theta::ThetaTable;

/// The outcome of a DiffTune run.
#[derive(Debug)]
pub struct DiffTuneResult {
    /// The learned parameter table, ready to plug back into the simulator.
    pub learned: SimParams,
    /// The randomly initialized table the optimization started from.
    pub initial: SimParams,
    /// Surrogate training statistics (Equation 2).
    pub surrogate_report: TrainReport,
    /// Mean parameter-table training loss per epoch (Equation 3).
    pub table_losses: Vec<f64>,
    /// The trained surrogate (useful for analyses such as Figure 2).
    pub surrogate: Box<dyn SurrogateModel>,
    /// Number of learned scalar parameters.
    pub num_learned_parameters: usize,
    /// Number of empty training blocks that were skipped (they carry no
    /// instructions to simulate, so they cannot contribute to training).
    pub skipped_blocks: usize,
}

/// A serializable snapshot of a session between stages.
///
/// Checkpoints hold the stage cursor, the run seed, and every learned
/// artifact produced so far (surrogate weights, θ, losses) — all plain serde
/// data, so they round-trip through JSON byte-exactly (`f32` values survive
/// via Rust's shortest round-trip float formatting). The simulated dataset is
/// deliberately *not* serialized: it is derived data, and a resume from the
/// [`Stage::FitSurrogate`] cursor regenerates it deterministically from the
/// seed instead of shipping hundreds of megabytes around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// The next stage the resumed session will run.
    pub stage: Stage,
    /// The run seed (must match the resuming session's config).
    pub seed: u64,
    /// Number of non-empty training blocks the run used.
    pub train_blocks: usize,
    /// Order-sensitive FNV-1a fingerprint of the training pairs; a resume
    /// with a different training set is rejected rather than silently
    /// continuing on different data.
    pub train_fingerprint: u64,
    /// Bit pattern of the table learning rate the run was configured with.
    pub table_learning_rate_bits: u32,
    /// Table-optimization epochs the run was configured with.
    pub table_epochs: usize,
    /// Table-optimization batch size the run was configured with.
    pub table_batch_size: usize,
    /// Whether θ was clamped to the sampling region during optimization.
    pub clamp_to_sampling: bool,
    /// Trained surrogate weights (present once `fit_surrogate` has run).
    pub surrogate_params: Option<Params>,
    /// The model configuration `surrogate_params` was trained under, in the
    /// artifact-side rendering — enough for a serving process to rebuild the
    /// architecture and load the weights without the run's `DiffTuneConfig`.
    /// `None` in checkpoints written before this field existed (those cells
    /// serve table-only).
    pub surrogate_config: Option<difftune_surrogate::ModelConfig>,
    /// Surrogate training statistics (present once `fit_surrogate` has run).
    pub surrogate_report: Option<TrainReport>,
    /// The optimized θ table (present once `optimize_table` has run).
    pub theta: Option<ThetaTable>,
    /// The random initialization θ started from.
    pub initial: Option<SimParams>,
    /// Per-epoch table losses accumulated so far.
    pub table_losses: Vec<f64>,
}

impl RunCheckpoint {
    /// Serializes the checkpoint to JSON.
    ///
    /// # Errors
    ///
    /// [`DiffTuneError::Checkpoint`] when the checkpoint contains a
    /// non-finite float (JSON cannot represent NaN/Inf, so such a snapshot
    /// would save "successfully" and then fail to reload — a diverged run is
    /// reported at save time instead).
    pub fn to_json(&self) -> Result<String, DiffTuneError> {
        self.ensure_finite()?;
        serde_json::to_string(self).map_err(|error| DiffTuneError::Checkpoint {
            message: format!("serialization failed: {error:?}"),
        })
    }

    /// Rejects non-finite floats anywhere in the learned state.
    fn ensure_finite(&self) -> Result<(), DiffTuneError> {
        let bad = |what: String| DiffTuneError::Checkpoint {
            message: format!(
                "cannot serialize: {what} contains a non-finite value (did training diverge?)"
            ),
        };
        if let Some(params) = &self.surrogate_params {
            for (_, name, value) in params.iter() {
                if value.data().iter().any(|v| !v.is_finite()) {
                    return Err(bad(format!("surrogate weight tensor {name:?}")));
                }
            }
        }
        if let Some(report) = &self.surrogate_report {
            if report.epoch_losses.iter().any(|v| !v.is_finite()) {
                return Err(bad("the surrogate report".to_string()));
            }
        }
        if let Some(theta) = &self.theta {
            if theta.tensor().data().iter().any(|v| !v.is_finite()) {
                return Err(bad("θ".to_string()));
            }
        }
        if self.table_losses.iter().any(|v| !v.is_finite()) {
            return Err(bad("the table losses".to_string()));
        }
        Ok(())
    }

    /// Deserializes a checkpoint from JSON.
    ///
    /// Fields added after the first checkpoint schema (`surrogate_config`)
    /// are backfilled with `null` when absent, so old checkpoints keep
    /// loading.
    pub fn from_json(json: &str) -> Result<Self, DiffTuneError> {
        let corrupt = |error: String| DiffTuneError::Checkpoint {
            message: format!("deserialization failed: {error}"),
        };
        let mut value =
            serde_json::from_str_value(json).map_err(|error| corrupt(format!("{error:?}")))?;
        if let serde::Value::Map(entries) = &mut value {
            for key in ["surrogate_config"] {
                if !entries.iter().any(|(name, _)| name == key) {
                    entries.push((key.to_string(), serde::Value::Null));
                }
            }
        }
        <Self as Deserialize>::deserialize(&value).map_err(|error| corrupt(format!("{error:?}")))
    }
}

/// Validates configuration and inputs into a runnable [`Session`].
///
/// ```no_run
/// use difftune::{DiffTuneBuilder, DiffTuneConfig, ParamSpec};
/// use difftune_cpu::{default_params, Microarch};
/// use difftune_sim::McaSimulator;
///
/// # let train_set: Vec<(difftune_isa::BasicBlock, f64)> = vec![];
/// let simulator = McaSimulator::default();
/// let session = DiffTuneBuilder::new(DiffTuneConfig::default())
///     .build(
///         &simulator,
///         &ParamSpec::llvm_mca(),
///         &default_params(Microarch::Haswell),
///         &train_set,
///     )?;
/// let result = session.run_to_completion()?;
/// # Ok::<(), difftune::DiffTuneError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiffTuneBuilder {
    config: DiffTuneConfig,
}

impl DiffTuneBuilder {
    /// Starts a builder from a configuration.
    pub fn new(config: DiffTuneConfig) -> Self {
        DiffTuneBuilder { config }
    }

    /// The configuration this builder will validate.
    pub fn config(&self) -> &DiffTuneConfig {
        &self.config
    }

    /// Validates the configuration and inputs and produces a session at the
    /// first stage.
    ///
    /// # Errors
    ///
    /// [`DiffTuneError::InvalidConfig`] / [`DiffTuneError::Surrogate`] for
    /// unusable hyperparameters, [`DiffTuneError::EmptyTrainSet`] when the
    /// training set is empty or contains only empty blocks.
    pub fn build<'a>(
        &self,
        simulator: &'a dyn Simulator,
        spec: &ParamSpec,
        defaults: &SimParams,
        train_set: &[(BasicBlock, f64)],
    ) -> Result<Session<'a>, DiffTuneError> {
        self.config.validate()?;
        validate_spec(spec)?;
        if train_set.is_empty() {
            return Err(DiffTuneError::EmptyTrainSet);
        }
        let pairs: Vec<(BasicBlock, f64)> = train_set
            .iter()
            .filter(|(block, _)| !block.is_empty())
            .cloned()
            .collect();
        if pairs.is_empty() {
            return Err(DiffTuneError::EmptyTrainSet);
        }
        let skipped_blocks = train_set.len() - pairs.len();
        validate_defaults(defaults, &pairs)?;

        Ok(Session {
            config: self.config.clone(),
            simulator,
            spec: *spec,
            defaults: defaults.clone(),
            pairs,
            skipped_blocks,
            observers: Vec::new(),
            stage: Stage::GenerateDataset,
            simulated: None,
            surrogate: None,
            surrogate_report: None,
            theta: None,
            initial: None,
            table_losses: Vec::new(),
        })
    }

    /// Rebuilds a session from a [`RunCheckpoint`], fast-forwarded to the
    /// checkpoint's stage cursor.
    ///
    /// The simulator, spec, defaults, and training set must be the ones the
    /// checkpointed run used; the seed is cross-checked against the config.
    /// A checkpoint taken before surrogate training resumes at
    /// [`Stage::GenerateDataset`] (the simulated dataset is derived data and
    /// is regenerated deterministically rather than serialized).
    ///
    /// # Errors
    ///
    /// Everything [`DiffTuneBuilder::build`] reports, plus
    /// [`DiffTuneError::Checkpoint`] when the checkpoint is internally
    /// inconsistent or does not fit the session (seed mismatch, wrong
    /// surrogate architecture, wrong table size).
    pub fn resume<'a>(
        &self,
        simulator: &'a dyn Simulator,
        spec: &ParamSpec,
        defaults: &SimParams,
        train_set: &[(BasicBlock, f64)],
        checkpoint: &RunCheckpoint,
    ) -> Result<Session<'a>, DiffTuneError> {
        let mut session = self.build(simulator, spec, defaults, train_set)?;
        if checkpoint.seed != self.config.seed {
            return Err(DiffTuneError::Checkpoint {
                message: format!(
                    "checkpoint was taken with seed {} but the session is configured with seed {}",
                    checkpoint.seed, self.config.seed
                ),
            });
        }

        // A checkpoint between dataset generation and surrogate training
        // carries no learned state yet: re-run dataset generation (it is
        // deterministic in the seed).
        let stage = match checkpoint.stage {
            Stage::GenerateDataset | Stage::FitSurrogate => Stage::GenerateDataset,
            other => other,
        };

        if matches!(stage, Stage::OptimizeTable | Stage::Finished) {
            // From here on the checkpoint's learned state is reused, so the
            // inputs that shaped (or will shape) it must be the originals —
            // otherwise the "bit-identical resume" guarantee silently breaks.
            if checkpoint.train_blocks != session.pairs.len()
                || checkpoint.train_fingerprint != fingerprint_pairs(&session.pairs)
            {
                return Err(DiffTuneError::Checkpoint {
                    message: format!(
                        "checkpoint was taken with a different training set ({} blocks, \
                         fingerprint {:#018x}); resume with the original data",
                        checkpoint.train_blocks, checkpoint.train_fingerprint
                    ),
                });
            }
            if checkpoint.table_learning_rate_bits != self.config.table_learning_rate.to_bits()
                || checkpoint.table_epochs != self.config.table_epochs
                || checkpoint.table_batch_size != self.config.table_batch_size
                || checkpoint.clamp_to_sampling != self.config.clamp_to_sampling
            {
                return Err(DiffTuneError::Checkpoint {
                    message: "checkpoint was taken with different table-optimization \
                              hyperparameters (learning rate, epochs, batch size, or clamping); \
                              resume with the original configuration"
                        .to_string(),
                });
            }

            let saved_params =
                checkpoint
                    .surrogate_params
                    .as_ref()
                    .ok_or_else(|| DiffTuneError::Checkpoint {
                        message: format!(
                            "stage {:?} requires surrogate weights, but the checkpoint has none",
                            checkpoint.stage
                        ),
                    })?;
            let report =
                checkpoint
                    .surrogate_report
                    .clone()
                    .ok_or_else(|| DiffTuneError::Checkpoint {
                        message: format!(
                            "stage {:?} requires a surrogate report, but the checkpoint has none",
                            checkpoint.stage
                        ),
                    })?;
            let mut surrogate = build_surrogate(&self.config.surrogate);
            check_params_compatible(surrogate.params(), saved_params)?;
            *surrogate.params_mut() = saved_params.clone();
            session.surrogate = Some(surrogate);
            session.surrogate_report = Some(report);
        }

        if stage == Stage::Finished {
            let theta = checkpoint
                .theta
                .clone()
                .ok_or_else(|| DiffTuneError::Checkpoint {
                    message: "stage Finished requires θ, but the checkpoint has none".to_string(),
                })?;
            let expected = ThetaTable::from_table(&session.defaults).len();
            if theta.len() != expected {
                return Err(DiffTuneError::Checkpoint {
                    message: format!(
                        "θ has {} entries but the defaults table needs {expected}",
                        theta.len()
                    ),
                });
            }
            let initial = checkpoint
                .initial
                .clone()
                .ok_or_else(|| DiffTuneError::Checkpoint {
                    message: "stage Finished requires the initial table, but the checkpoint has \
                              none"
                        .to_string(),
                })?;
            session.theta = Some(theta);
            session.initial = Some(initial);
            session.table_losses = checkpoint.table_losses.clone();
        }

        session.stage = stage;
        Ok(session)
    }
}

/// A validated, staged DiffTune run.
///
/// Stages must run in order ([`Stage::GenerateDataset`] →
/// [`Stage::FitSurrogate`] → [`Stage::OptimizeTable`] → [`Session::finish`]);
/// calling one out of order returns [`DiffTuneError::StageOrder`] instead of
/// panicking. [`Session::run_to_completion`] drives whatever stages remain.
pub struct Session<'a> {
    config: DiffTuneConfig,
    simulator: &'a dyn Simulator,
    spec: ParamSpec,
    defaults: SimParams,
    /// Non-empty `(block, timing)` pairs from the training set.
    pairs: Vec<(BasicBlock, f64)>,
    skipped_blocks: usize,
    observers: Vec<Box<dyn RunObserver + 'a>>,
    stage: Stage,
    simulated: Option<Vec<difftune_surrogate::train::TrainSample>>,
    surrogate: Option<Box<dyn SurrogateModel>>,
    surrogate_report: Option<TrainReport>,
    theta: Option<ThetaTable>,
    initial: Option<SimParams>,
    table_losses: Vec<f64>,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("stage", &self.stage)
            .field("simulator", &self.simulator.name())
            .field("train_blocks", &self.pairs.len())
            .field("skipped_blocks", &self.skipped_blocks)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Session<'a> {
    /// The stage the session will run next.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The configuration the session runs under.
    pub fn config(&self) -> &DiffTuneConfig {
        &self.config
    }

    /// Number of empty training blocks dropped during validation.
    pub fn skipped_blocks(&self) -> usize {
        self.skipped_blocks
    }

    /// Registers an observer; it receives every subsequent [`ProgressEvent`].
    pub fn add_observer(&mut self, observer: Box<dyn RunObserver + 'a>) {
        self.observers.push(observer);
    }

    /// Registers an observer, builder-style.
    pub fn observed(mut self, observer: Box<dyn RunObserver + 'a>) -> Self {
        self.add_observer(observer);
        self
    }

    fn expect_stage(&self, requested: Stage) -> Result<(), DiffTuneError> {
        if self.stage == requested {
            Ok(())
        } else {
            Err(DiffTuneError::StageOrder {
                current: self.stage,
                requested,
            })
        }
    }

    fn emit(observers: &mut [Box<dyn RunObserver + 'a>], event: &ProgressEvent) {
        for observer in observers.iter_mut() {
            observer.on_event(event);
        }
    }

    /// Stage 1 (Figure 1, step 2): builds the simulated dataset and returns
    /// its size. Emits [`ProgressEvent::DatasetProgress`] as samples land.
    pub fn generate_dataset(&mut self) -> Result<usize, DiffTuneError> {
        self.expect_stage(Stage::GenerateDataset)?;
        Self::emit(
            &mut self.observers,
            &ProgressEvent::StageStarted {
                stage: Stage::GenerateDataset,
            },
        );
        let blocks: Vec<BasicBlock> = self.pairs.iter().map(|(b, _)| b.clone()).collect();
        let size = ((blocks.len() as f64 * self.config.simulated_multiplier) as usize)
            .clamp(1, self.config.max_simulated);
        let observers = &mut self.observers;
        let simulated = generate_simulated_dataset_observed(
            self.simulator,
            &self.spec,
            &self.defaults,
            &blocks,
            size,
            self.config.seed,
            self.config.threads,
            &mut |generated, total| {
                Self::emit(
                    observers,
                    &ProgressEvent::DatasetProgress { generated, total },
                );
            },
        )?;
        let generated = simulated.len();
        self.simulated = Some(simulated);
        self.stage = Stage::FitSurrogate;
        Self::emit(
            &mut self.observers,
            &ProgressEvent::StageFinished {
                stage: Stage::GenerateDataset,
            },
        );
        Ok(generated)
    }

    /// Stage 2 (Equation 2): trains the surrogate on the simulated dataset.
    /// Emits one [`ProgressEvent::SurrogateEpoch`] per epoch.
    pub fn fit_surrogate(&mut self) -> Result<&TrainReport, DiffTuneError> {
        self.expect_stage(Stage::FitSurrogate)?;
        Self::emit(
            &mut self.observers,
            &ProgressEvent::StageStarted {
                stage: Stage::FitSurrogate,
            },
        );
        let simulated = self
            .simulated
            .take()
            .expect("dataset generated in stage 1 (guaranteed by the stage cursor)");
        let mut surrogate = build_surrogate(&self.config.surrogate);
        let mut optimizer = Adam::new(self.config.surrogate_train.learning_rate);
        let observers = &mut self.observers;
        let report = train_observed(
            &mut surrogate,
            &simulated,
            &self.config.surrogate_train,
            &mut optimizer,
            &mut |event: &TrainEvent| {
                let TrainEvent::EpochCompleted {
                    epoch,
                    epochs,
                    mean_loss,
                } = *event;
                Self::emit(
                    observers,
                    &ProgressEvent::SurrogateEpoch {
                        epoch,
                        epochs,
                        mean_loss,
                    },
                );
            },
        )?;
        self.surrogate = Some(surrogate);
        self.surrogate_report = Some(report);
        self.stage = Stage::OptimizeTable;
        Self::emit(
            &mut self.observers,
            &ProgressEvent::StageFinished {
                stage: Stage::FitSurrogate,
            },
        );
        Ok(self.surrogate_report.as_ref().expect("report just stored"))
    }

    /// Stage 3 (Equation 3): optimizes θ through the frozen surrogate and
    /// returns the per-epoch losses. Emits [`ProgressEvent::TableBatch`] and
    /// [`ProgressEvent::TableEpoch`] as training proceeds.
    pub fn optimize_table(&mut self) -> Result<&[f64], DiffTuneError> {
        self.expect_stage(Stage::OptimizeTable)?;
        Self::emit(
            &mut self.observers,
            &ProgressEvent::StageStarted {
                stage: Stage::OptimizeTable,
            },
        );
        let surrogate = self.surrogate.take().expect("surrogate trained in stage 2");
        let (theta, losses, initial) = self.train_table(&*surrogate);
        self.surrogate = Some(surrogate);
        self.theta = Some(theta);
        self.initial = Some(initial);
        self.table_losses = losses;
        self.stage = Stage::Finished;
        Self::emit(
            &mut self.observers,
            &ProgressEvent::StageFinished {
                stage: Stage::OptimizeTable,
            },
        );
        Ok(&self.table_losses)
    }

    /// Extracts the result once every stage has run.
    pub fn finish(self) -> Result<DiffTuneResult, DiffTuneError> {
        self.expect_stage(Stage::Finished)?;
        let theta = self.theta.expect("θ optimized in stage 3");
        Ok(DiffTuneResult {
            learned: theta.to_sim_params(),
            initial: self.initial.expect("initial table recorded in stage 3"),
            surrogate_report: self.surrogate_report.expect("report stored in stage 2"),
            table_losses: self.table_losses,
            surrogate: self.surrogate.expect("surrogate trained in stage 2"),
            num_learned_parameters: self.spec.num_learned(self.defaults.num_opcodes()),
            skipped_blocks: self.skipped_blocks,
        })
    }

    /// Runs the next pending stage, whichever it is, and returns the stage
    /// that ran (a no-op returning [`Stage::Finished`] once every stage has
    /// completed).
    ///
    /// This is the single-step form of [`Session::run_to_completion`]: drivers
    /// that need to do work *between* stages — write a checkpoint, check a
    /// wall-clock budget, stop early — loop on `advance` instead of
    /// duplicating the stage dispatch.
    pub fn advance(&mut self) -> Result<Stage, DiffTuneError> {
        let current = self.stage;
        match current {
            Stage::GenerateDataset => {
                self.generate_dataset()?;
            }
            Stage::FitSurrogate => {
                self.fit_surrogate()?;
            }
            Stage::OptimizeTable => {
                self.optimize_table()?;
            }
            Stage::Finished => {}
        }
        Ok(current)
    }

    /// Number of non-empty training blocks the session will optimize against.
    pub fn train_blocks(&self) -> usize {
        self.pairs.len()
    }

    /// Runs every remaining stage in order and extracts the result.
    pub fn run_to_completion(mut self) -> Result<DiffTuneResult, DiffTuneError> {
        while self.stage != Stage::Finished {
            self.advance()?;
        }
        self.finish()
    }

    /// Snapshots the session's stage cursor and learned artifacts.
    ///
    /// The snapshot is taken between stages: a checkpoint saved mid-run
    /// resumes at the start of the stage the session was about to run.
    pub fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            stage: self.stage,
            seed: self.config.seed,
            train_blocks: self.pairs.len(),
            train_fingerprint: fingerprint_pairs(&self.pairs),
            table_learning_rate_bits: self.config.table_learning_rate.to_bits(),
            table_epochs: self.config.table_epochs,
            table_batch_size: self.config.table_batch_size,
            clamp_to_sampling: self.config.clamp_to_sampling,
            surrogate_params: self.surrogate.as_ref().map(|s| s.params().clone()),
            surrogate_config: self
                .surrogate
                .as_ref()
                .map(|_| self.config.surrogate.into()),
            surrogate_report: self.surrogate_report.clone(),
            theta: self.theta.clone(),
            initial: self.initial.clone(),
            table_losses: self.table_losses.clone(),
        }
    }

    /// Equation 3: gradient descent on θ through the frozen surrogate.
    fn train_table(&mut self, surrogate: &dyn SurrogateModel) -> (ThetaTable, Vec<f64>, SimParams) {
        let config = &self.config;
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        let default_theta = ThetaTable::from_table(&self.defaults);

        // Initialize the table to a random sample from the sampling
        // distribution (Section IV), keeping unlearned entries at the defaults.
        let initial_table = sample_table(&mut rng, spec, &self.defaults);
        let mut theta = ThetaTable::from_table(&initial_table);
        theta.freeze_unlearned(spec, &default_theta);
        let initial = theta.to_sim_params();

        // The optimization store: frozen surrogate weights plus θ. Only θ ever
        // receives optimizer updates.
        let mut store = surrogate.params().clone();
        let theta_id = store.add("difftune.theta", theta.tensor());
        let mut optimizer = Adam::new(config.table_learning_rate);

        let vocab = Vocab::new();
        let samples: Vec<(TokenizedBlock, Vec<OpcodeId>, f64)> = self
            .pairs
            .iter()
            .map(|(block, timing)| {
                let tokenized = vocab.tokenize_block(block);
                let opcodes = tokenized.insts.iter().map(|inst| inst.opcode).collect();
                (tokenized, opcodes, *timing)
            })
            .collect();

        // The deterministic batch engine: per-sample gradients on worker
        // threads, reduced in fixed sample order, so the learned table is
        // bit-identical for every thread count (see tests/determinism.rs).
        let mut engine = Batch::new(config.threads);
        let mut grads = Grads::new(&store);

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let batches = order.len().div_ceil(config.table_batch_size.max(1));
        let mut losses = Vec::with_capacity(config.table_epochs);
        for epoch in 0..config.table_epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for (batch_index, batch) in order.chunks(config.table_batch_size).enumerate() {
                let seed = 1.0 / batch.len() as f32;
                let batch_refs: Vec<&(TokenizedBlock, Vec<OpcodeId>, f64)> =
                    batch.iter().map(|&i| &samples[i]).collect();

                grads.reset(&store);
                let batch_loss = engine.accumulate(
                    &store,
                    &batch_refs,
                    |graph, sample| {
                        let (block, opcodes, timing) = &**sample;
                        let theta_var = graph.param(theta_id);
                        let (features, global) =
                            ThetaTable::feature_vars(graph, theta_var, opcodes);
                        let prediction =
                            surrogate.forward(graph, block, Some(&features), Some(global));
                        let target = timing.max(1e-3) as f32;
                        let target_var = graph.input(Tensor::scalar(target));
                        let diff = graph.sub(prediction, target_var);
                        let abs = graph.abs(diff);
                        graph.scale(abs, 1.0 / target)
                    },
                    seed,
                    &mut grads,
                );

                // Keep the surrogate frozen: only θ's gradient reaches the
                // optimizer.
                let mut theta_grads = Grads::new(&store);
                if let Some(grad) = grads.get(theta_id) {
                    theta_grads.accumulate(theta_id, grad, 1.0);
                }
                optimizer.step(&mut store, &theta_grads);

                // Restore any frozen entries to their default values and keep
                // the learned entries inside the surrogate's training region.
                let mut updated = ThetaTable::from_tensor(store.get(theta_id));
                if config.clamp_to_sampling {
                    updated.clamp_to_sampling(spec);
                }
                updated.freeze_unlearned(spec, &default_theta);
                *store.get_mut(theta_id) = updated.tensor();

                epoch_loss += batch_loss;
                Self::emit(
                    &mut self.observers,
                    &ProgressEvent::TableBatch {
                        epoch,
                        batch: batch_index,
                        batches,
                        mean_loss: batch_loss / batch.len().max(1) as f64,
                    },
                );
            }
            let mean_loss = epoch_loss / samples.len().max(1) as f64;
            losses.push(mean_loss);
            Self::emit(
                &mut self.observers,
                &ProgressEvent::TableEpoch {
                    epoch,
                    epochs: config.table_epochs,
                    mean_loss,
                },
            );
        }

        let final_theta = ThetaTable::from_tensor(store.get(theta_id));
        (final_theta, losses, initial)
    }
}

/// Order-sensitive FNV-1a fingerprint of the training pairs, used to bind a
/// checkpoint to the data that produced it. FNV is hand-rolled (rather than
/// `DefaultHasher`) because the digest is persisted: it must be stable across
/// Rust versions and processes.
fn fingerprint_pairs(pairs: &[(BasicBlock, f64)]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    };
    for (block, timing) in pairs {
        for byte in block.to_string().bytes() {
            eat(byte);
        }
        for byte in timing.to_bits().to_le_bytes() {
            eat(byte);
        }
        eat(0xff);
    }
    hash
}

/// Checks that a spec's sampling ranges are usable.
fn validate_spec(spec: &ParamSpec) -> Result<(), DiffTuneError> {
    let ranges = [
        ("sampling.write_latency", spec.sampling.write_latency),
        ("sampling.port_cycles", spec.sampling.port_cycles),
        ("sampling.ports_used", spec.sampling.ports_used),
        ("sampling.read_advance", spec.sampling.read_advance),
        ("sampling.num_micro_ops", spec.sampling.num_micro_ops),
        ("sampling.dispatch_width", spec.sampling.dispatch_width),
        ("sampling.reorder_buffer", spec.sampling.reorder_buffer),
    ];
    for (field, (lo, hi)) in ranges {
        if lo > hi {
            return Err(DiffTuneError::InvalidConfig {
                field,
                message: format!("range {lo}..={hi} is empty"),
            });
        }
    }
    Ok(())
}

/// Checks that the defaults table covers every opcode the training set uses
/// (θ is indexed by opcode, so a too-small table would read out of bounds).
fn validate_defaults(
    defaults: &SimParams,
    pairs: &[(BasicBlock, f64)],
) -> Result<(), DiffTuneError> {
    let vocab = Vocab::new();
    let covered = defaults.num_opcodes();
    for (block, _) in pairs {
        let tokenized = vocab.tokenize_block(block);
        if let Some(inst) = tokenized
            .insts
            .iter()
            .find(|inst| inst.opcode.index() >= covered)
        {
            return Err(DiffTuneError::InvalidConfig {
                field: "defaults",
                message: format!(
                    "the defaults table covers {covered} opcodes but the training set uses \
                     opcode index {}",
                    inst.opcode.index()
                ),
            });
        }
    }
    Ok(())
}

/// Checks that saved surrogate weights fit a freshly built model.
fn check_params_compatible(fresh: &Params, saved: &Params) -> Result<(), DiffTuneError> {
    if fresh.len() != saved.len() {
        return Err(DiffTuneError::Checkpoint {
            message: format!(
                "checkpoint has {} weight tensors but the configured surrogate has {}",
                saved.len(),
                fresh.len()
            ),
        });
    }
    for ((_, fresh_name, fresh_value), (_, saved_name, saved_value)) in
        fresh.iter().zip(saved.iter())
    {
        if fresh_name != saved_name || fresh_value.shape() != saved_value.shape() {
            return Err(DiffTuneError::Checkpoint {
                message: format!(
                    "weight tensor mismatch: checkpoint has {saved_name} {:?}, the configured \
                     surrogate expects {fresh_name} {:?} — was the checkpoint taken with a \
                     different surrogate configuration?",
                    saved_value.shape(),
                    fresh_value.shape()
                ),
            });
        }
    }
    Ok(())
}
