//! # difftune
//!
//! DiffTune: learning CPU simulator parameters with learned differentiable
//! surrogates — the paper's primary contribution.
//!
//! Given a parameterized simulator `f(θ, x)` (from `difftune-sim`), a dataset
//! of ground-truth measurements `(x, y)` (from `difftune-bhive` or any other
//! source), and a description of the parameters (a [`ParamSpec`]), DiffTune:
//!
//! 1. samples random parameter tables from the spec's sampling distributions
//!    and builds a *simulated* dataset `(θ, x, f(θ, x))`
//!    ([`generate_simulated_dataset`]);
//! 2. trains a differentiable surrogate `f̂ ≈ f` on that dataset (Equation 2 —
//!    [`difftune_surrogate::train`]);
//! 3. freezes the surrogate and optimizes the parameter table θ by gradient
//!    descent against the ground-truth dataset (Equation 3 —
//!    [`ThetaTable`] plus the driver in [`DiffTune`]);
//! 4. extracts the learned floating-point table back into valid integer
//!    simulator parameters (absolute value, add the lower bound, round).
//!
//! # Example
//!
//! ```no_run
//! use difftune::{DiffTune, DiffTuneConfig, ParamSpec};
//! use difftune_bhive::{CorpusConfig, Dataset};
//! use difftune_cpu::{default_params, Microarch};
//! use difftune_sim::McaSimulator;
//!
//! let dataset = Dataset::build(Microarch::Haswell, &CorpusConfig::default());
//! let train: Vec<_> = dataset.train().iter().map(|r| (r.block.clone(), r.timing)).collect();
//! let difftune = DiffTune::new(DiffTuneConfig::default());
//! let result = difftune.run(&McaSimulator::default(), &ParamSpec::llvm_mca(), &default_params(Microarch::Haswell), &train);
//! println!("learned dispatch width: {}", result.learned.dispatch_width);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pipeline;
mod sampling;
mod simdata;
mod spec;
mod theta;

pub use pipeline::{DiffTune, DiffTuneConfig, DiffTuneResult, SurrogateKind};
pub use sampling::sample_table;
pub use simdata::generate_simulated_dataset;
pub use spec::{ParamSpec, SamplingRanges};
pub use theta::ThetaTable;
