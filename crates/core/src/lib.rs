//! # difftune
//!
//! DiffTune: learning CPU simulator parameters with learned differentiable
//! surrogates — the paper's primary contribution.
//!
//! Given a parameterized simulator `f(θ, x)` (from `difftune-sim`), a dataset
//! of ground-truth measurements `(x, y)` (from `difftune-bhive` or any other
//! source), and a description of the parameters (a [`ParamSpec`]), DiffTune:
//!
//! 1. samples random parameter tables from the spec's sampling distributions
//!    and builds a *simulated* dataset `(θ, x, f(θ, x))`
//!    ([`Session::generate_dataset`]);
//! 2. trains a differentiable surrogate `f̂ ≈ f` on that dataset (Equation 2 —
//!    [`Session::fit_surrogate`]);
//! 3. freezes the surrogate and optimizes the parameter table θ by gradient
//!    descent against the ground-truth dataset (Equation 3 —
//!    [`Session::optimize_table`]);
//! 4. extracts the learned floating-point table back into valid integer
//!    simulator parameters ([`Session::finish`]).
//!
//! # The session API
//!
//! [`DiffTuneBuilder`] validates a [`DiffTuneConfig`] plus the run inputs
//! into a [`Session`] — malformed input comes back as a typed
//! [`DiffTuneError`], never a panic. The session runs the pipeline stage by
//! stage (or all at once with [`Session::run_to_completion`]), streams
//! [`ProgressEvent`]s to registered [`RunObserver`]s, and can snapshot a
//! serde-backed [`RunCheckpoint`] between stages so a killed run resumes
//! mid-pipeline with a bit-identical result.
//!
//! ```no_run
//! use difftune::{DiffTuneBuilder, DiffTuneConfig, ParamSpec, ProgressEvent};
//! use difftune_bhive::{CorpusConfig, Dataset};
//! use difftune_cpu::{default_params, Microarch};
//! use difftune_sim::McaSimulator;
//!
//! let dataset = Dataset::build(Microarch::Haswell, &CorpusConfig::default());
//! let train: Vec<_> = dataset.train().iter().map(|r| (r.block.clone(), r.timing)).collect();
//! let simulator = McaSimulator::default();
//! let defaults = default_params(Microarch::Haswell);
//!
//! let mut session = DiffTuneBuilder::new(DiffTuneConfig::default())
//!     .build(&simulator, &ParamSpec::llvm_mca(), &defaults, &train)?;
//! session.add_observer(Box::new(|event: &ProgressEvent| {
//!     if let ProgressEvent::SurrogateEpoch { epoch, mean_loss, .. } = event {
//!         println!("surrogate epoch {epoch}: loss {mean_loss:.4}");
//!     }
//! }));
//!
//! session.generate_dataset()?;
//! session.fit_surrogate()?;
//! let checkpoint = session.checkpoint(); // resumable from here
//! session.optimize_table()?;
//! let result = session.finish()?;
//! println!("learned dispatch width: {}", result.learned.dispatch_width);
//! # let _ = checkpoint;
//! # Ok::<(), difftune::DiffTuneError>(())
//! ```
//!
//! # Migrating from `DiffTune::run`
//!
//! The original blocking driver ran the whole pipeline in one call and
//! panicked on bad input. It still exists as a deprecated wrapper; the
//! one-line migration is:
//!
//! ```text
//! // before
//! let result = DiffTune::new(config).run(&sim, &spec, &defaults, &train);
//! // after
//! let result = DiffTuneBuilder::new(config)
//!     .build(&sim, &spec, &defaults, &train)?
//!     .run_to_completion()?;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend_id;
mod env;
mod error;
mod observer;
mod pipeline;
mod sampling;
mod session;
mod simdata;
mod spec;
mod theta;

pub use backend_id::{BackendId, SimulatorKind, Source, SpecKind};
pub use env::{apply_env_threads, threads_from_env, THREADS_ENV_VAR};
pub use error::DiffTuneError;
pub use observer::{ProgressEvent, RecordingObserver, RunObserver, Stage};
pub use pipeline::{build_surrogate, DiffTune, DiffTuneConfig, SurrogateKind};
pub use sampling::sample_table;
pub use session::{DiffTuneBuilder, DiffTuneResult, RunCheckpoint, Session};
pub use simdata::{
    generate_simulated_dataset, generate_simulated_dataset_observed, GENERATION_RANGE,
};
pub use spec::{ParamSpec, SamplingRanges};
pub use theta::ThetaTable;
