//! Typed errors for the DiffTune driver.

use difftune_surrogate::train::TrainError;

use crate::observer::Stage;

/// Everything that can go wrong while configuring, running, or resuming a
/// DiffTune session.
///
/// The driver used to `assert!` on malformed input; the session API reports
/// every such condition as a value instead, so no panic is reachable from the
/// public [`Session`](crate::Session) surface on bad input.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffTuneError {
    /// The training set was empty, or every block in it was empty.
    EmptyTrainSet,
    /// A configuration field had an unusable value.
    InvalidConfig {
        /// The offending field (e.g. `"simulated_multiplier"`).
        field: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// A stage method was called out of order (e.g.
    /// [`fit_surrogate`](crate::Session::fit_surrogate) before
    /// [`generate_dataset`](crate::Session::generate_dataset)).
    StageOrder {
        /// The stage the session is currently in.
        current: Stage,
        /// The stage the caller tried to run.
        requested: Stage,
    },
    /// A checkpoint did not match the session it was resumed into, or could
    /// not be decoded.
    Checkpoint {
        /// What was inconsistent.
        message: String,
    },
    /// Surrogate training rejected its hyperparameters.
    Surrogate(TrainError),
}

impl std::fmt::Display for DiffTuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffTuneError::EmptyTrainSet => {
                write!(f, "DiffTune needs at least one non-empty training block")
            }
            DiffTuneError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration: {field}: {message}")
            }
            DiffTuneError::StageOrder { current, requested } => write!(
                f,
                "cannot run stage {requested:?} while the session is in stage {current:?}"
            ),
            DiffTuneError::Checkpoint { message } => write!(f, "bad checkpoint: {message}"),
            DiffTuneError::Surrogate(inner) => write!(f, "surrogate training: {inner}"),
        }
    }
}

impl std::error::Error for DiffTuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiffTuneError::Surrogate(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<TrainError> for DiffTuneError {
    fn from(inner: TrainError) -> Self {
        DiffTuneError::Surrogate(inner)
    }
}
