//! Run configuration and the legacy one-shot driver.
//!
//! The staged, resumable way to run DiffTune is the session API in
//! [`crate::session`] ([`DiffTuneBuilder`] → [`Session`]); this module keeps
//! the configuration types and a thin deprecated [`DiffTune::run`] wrapper
//! for code written against the original blocking entry point.

use difftune_isa::BasicBlock;
use difftune_sim::{SimParams, Simulator};
use difftune_surrogate::train::TrainConfig;
use difftune_surrogate::{
    FeatureMlpConfig, FeatureMlpModel, IthemalConfig, IthemalModel, SurrogateModel,
};

use crate::error::DiffTuneError;
use crate::session::{DiffTuneBuilder, DiffTuneResult, Session};
use crate::spec::ParamSpec;

/// Which surrogate family to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurrogateKind {
    /// The Ithemal-style LSTM surrogate from the paper (Figure 3).
    Lstm(IthemalConfig),
    /// The fast feature-MLP surrogate (used for ablations and quick runs).
    Mlp(FeatureMlpConfig),
}

/// Builds (but does not train) a surrogate of the given kind.
pub fn build_surrogate(kind: &SurrogateKind) -> Box<dyn SurrogateModel> {
    match *kind {
        SurrogateKind::Lstm(config) => Box::new(IthemalModel::new(config)),
        SurrogateKind::Mlp(config) => Box::new(FeatureMlpModel::new(config)),
    }
}

impl From<SurrogateKind> for difftune_surrogate::ModelConfig {
    /// The artifact-side rendering of a surrogate kind
    /// ([`difftune_surrogate::SurrogateArtifact`] stores a serde-capable
    /// `ModelConfig`; this crate's `SurrogateKind` stays the pipeline-facing
    /// selector).
    fn from(kind: SurrogateKind) -> Self {
        match kind {
            SurrogateKind::Lstm(config) => difftune_surrogate::ModelConfig::Lstm(config),
            SurrogateKind::Mlp(config) => difftune_surrogate::ModelConfig::Mlp(config),
        }
    }
}

impl From<difftune_surrogate::ModelConfig> for SurrogateKind {
    fn from(config: difftune_surrogate::ModelConfig) -> Self {
        match config {
            difftune_surrogate::ModelConfig::Lstm(c) => SurrogateKind::Lstm(c),
            difftune_surrogate::ModelConfig::Mlp(c) => SurrogateKind::Mlp(c),
        }
    }
}

/// Configuration of a DiffTune run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffTuneConfig {
    /// Which surrogate family to train.
    pub surrogate: SurrogateKind,
    /// Size of the simulated dataset as a multiple of the training set (the
    /// paper uses 10×).
    pub simulated_multiplier: f64,
    /// Hard cap on the simulated dataset size (keeps laptop-scale runs fast).
    pub max_simulated: usize,
    /// Surrogate training hyperparameters (Equation 2; the paper uses Adam
    /// with learning rate 1e-3 and batch size 256).
    pub surrogate_train: TrainConfig,
    /// Learning rate for the parameter table (Equation 3; the paper uses 0.05).
    pub table_learning_rate: f32,
    /// Epochs of parameter-table training over the ground-truth training set
    /// (the paper uses 1).
    pub table_epochs: usize,
    /// Batch size for parameter-table training.
    pub table_batch_size: usize,
    /// Keep θ inside the sampling distribution's range during optimization
    /// (the surrogate is only trained inside that region; see Section VII).
    pub clamp_to_sampling: bool,
    /// Random seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for DiffTuneConfig {
    /// A laptop-scale configuration using the fast feature-MLP surrogate; the
    /// paper-faithful LSTM surrogate is selected by the benchmark binaries via
    /// [`SurrogateKind::Lstm`].
    fn default() -> Self {
        DiffTuneConfig {
            surrogate: SurrogateKind::Mlp(FeatureMlpConfig::default()),
            simulated_multiplier: 5.0,
            max_simulated: 60_000,
            surrogate_train: TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            table_learning_rate: 0.05,
            table_epochs: 1,
            table_batch_size: 256,
            clamp_to_sampling: true,
            seed: 0,
            threads: 0,
        }
    }
}

impl DiffTuneConfig {
    /// Checks every field, returning the first problem found.
    pub fn validate(&self) -> Result<(), DiffTuneError> {
        if !self.simulated_multiplier.is_finite() || self.simulated_multiplier <= 0.0 {
            return Err(DiffTuneError::InvalidConfig {
                field: "simulated_multiplier",
                message: format!(
                    "must be finite and positive, got {}",
                    self.simulated_multiplier
                ),
            });
        }
        if self.max_simulated == 0 {
            return Err(DiffTuneError::InvalidConfig {
                field: "max_simulated",
                message: "must be at least 1".to_string(),
            });
        }
        if self.table_batch_size == 0 {
            return Err(DiffTuneError::InvalidConfig {
                field: "table_batch_size",
                message: "must be at least 1".to_string(),
            });
        }
        if !self.table_learning_rate.is_finite() || self.table_learning_rate <= 0.0 {
            return Err(DiffTuneError::InvalidConfig {
                field: "table_learning_rate",
                message: format!(
                    "must be finite and positive, got {}",
                    self.table_learning_rate
                ),
            });
        }
        if self.threads > difftune_surrogate::train::MAX_THREADS {
            return Err(DiffTuneError::InvalidConfig {
                field: "threads",
                message: format!(
                    "must be 0 (all cores) or at most {}, got {}",
                    difftune_surrogate::train::MAX_THREADS,
                    self.threads
                ),
            });
        }
        self.surrogate_train.validate()?;
        Ok(())
    }
}

/// The legacy one-shot DiffTune driver.
///
/// Prefer [`DiffTuneBuilder`]: it validates input into a staged [`Session`]
/// that can be observed, checkpointed, and resumed, and reports malformed
/// input as [`DiffTuneError`] values instead of panicking.
#[derive(Debug, Clone)]
pub struct DiffTune {
    config: DiffTuneConfig,
}

impl DiffTune {
    /// Creates a driver with the given configuration.
    pub fn new(config: DiffTuneConfig) -> Self {
        DiffTune { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DiffTuneConfig {
        &self.config
    }

    /// Builds (but does not train) the configured surrogate.
    pub fn build_surrogate(&self) -> Box<dyn SurrogateModel> {
        build_surrogate(&self.config.surrogate)
    }

    /// Runs the full DiffTune pipeline against a simulator and a ground-truth
    /// training set of `(block, measured timing)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration or an empty training set — the
    /// behavior this entry point always had. The session API reports those
    /// as [`DiffTuneError`] values instead.
    #[deprecated(
        note = "use DiffTuneBuilder::new(config).build(..)? and the staged Session API \
                (generate_dataset / fit_surrogate / optimize_table / finish)"
    )]
    pub fn run(
        &self,
        simulator: &dyn Simulator,
        spec: &ParamSpec,
        defaults: &SimParams,
        train_set: &[(BasicBlock, f64)],
    ) -> DiffTuneResult {
        DiffTuneBuilder::new(self.config.clone())
            .build(simulator, spec, defaults, train_set)
            .and_then(Session::run_to_completion)
            .unwrap_or_else(|error| panic!("DiffTune::run failed: {error}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DiffTuneBuilder;
    use difftune_sim::{McaSimulator, Simulator};

    fn tiny_train_set(simulator: &McaSimulator, truth: &SimParams) -> Vec<(BasicBlock, f64)> {
        [
            "addq %rax, %rbx",
            "addq %rax, %rbx\naddq %rbx, %rcx",
            "imulq %rbx, %rcx\naddq %rcx, %rax",
            "movq (%rdi), %rax\naddq %rax, %rbx",
            "pushq %rbx\ntestl %r8d, %r8d",
            "xorl %eax, %eax\naddl %eax, %ebx",
            "mulsd %xmm0, %xmm1\naddsd %xmm1, %xmm2",
            "subq %rdx, %rsi\nleaq 8(%rsi), %rdi",
            "shrq $3, %rax\norq %rax, %rbx",
            "movq %rax, 8(%rsp)\nmovq 8(%rsp), %rbx",
        ]
        .iter()
        .map(|text| {
            let block: BasicBlock = text.parse().unwrap();
            let timing = simulator.predict(truth, &block);
            (block, timing)
        })
        .collect()
    }

    fn fast_config() -> DiffTuneConfig {
        DiffTuneConfig {
            surrogate: SurrogateKind::Mlp(FeatureMlpConfig {
                hidden_dim: 24,
                ..FeatureMlpConfig::default()
            }),
            simulated_multiplier: 40.0,
            max_simulated: 400,
            surrogate_train: TrainConfig {
                epochs: 10,
                batch_size: 64,
                threads: 1,
                ..TrainConfig::default()
            },
            table_learning_rate: 0.05,
            table_epochs: 4,
            table_batch_size: 10,
            clamp_to_sampling: true,
            seed: 3,
            threads: 1,
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_and_respects_constraints() {
        // Ground truth produced by the simulator itself under a "true" table:
        // the surrogate-based optimization should produce a valid table and
        // reduce the training loss.
        let simulator = McaSimulator::new(16);
        let mut truth = SimParams::uniform_default();
        for entry in &mut truth.per_inst {
            entry.write_latency = 3;
        }
        let train_set = tiny_train_set(&simulator, &truth);
        let defaults = SimParams::uniform_default();

        let result = DiffTuneBuilder::new(fast_config())
            .build(&simulator, &ParamSpec::llvm_mca(), &defaults, &train_set)
            .unwrap()
            .run_to_completion()
            .unwrap();

        assert_eq!(result.learned.num_opcodes(), defaults.num_opcodes());
        assert!(result.learned.dispatch_width >= 1);
        assert!(result.learned.reorder_buffer_size >= 1);
        assert!(result.learned.per_inst.iter().all(|p| p.num_micro_ops >= 1));
        assert!(result.surrogate_report.final_loss().is_finite());
        assert!(!result.table_losses.is_empty());
        assert!(
            result.table_losses.last().unwrap() <= result.table_losses.first().unwrap(),
            "table training loss should not increase: {:?}",
            result.table_losses
        );
        assert_eq!(
            result.num_learned_parameters,
            ParamSpec::llvm_mca().num_learned(defaults.num_opcodes())
        );
        assert_eq!(result.skipped_blocks, 0);
    }

    #[test]
    fn deprecated_run_wrapper_matches_the_session() {
        let simulator = McaSimulator::new(16);
        let truth = SimParams::uniform_default();
        let train_set = tiny_train_set(&simulator, &truth);
        let defaults = SimParams::uniform_default();

        #[allow(deprecated)]
        let legacy = DiffTune::new(fast_config()).run(
            &simulator,
            &ParamSpec::llvm_mca(),
            &defaults,
            &train_set,
        );
        let session = DiffTuneBuilder::new(fast_config())
            .build(&simulator, &ParamSpec::llvm_mca(), &defaults, &train_set)
            .unwrap()
            .run_to_completion()
            .unwrap();
        assert_eq!(legacy.learned, session.learned);
        assert_eq!(legacy.initial, session.initial);
        assert_eq!(legacy.table_losses, session.table_losses);
    }

    #[test]
    fn write_latency_only_spec_keeps_other_parameters_at_defaults() {
        let simulator = McaSimulator::new(16);
        let truth = SimParams::uniform_default();
        let train_set = tiny_train_set(&simulator, &truth);
        let defaults = difftune_cpu::default_params(difftune_cpu::Microarch::Haswell);

        let mut config = fast_config();
        config.table_epochs = 60;
        config.table_learning_rate = 0.3;
        let result = DiffTuneBuilder::new(config)
            .build(
                &simulator,
                &ParamSpec::write_latency_only(),
                &defaults,
                &train_set,
            )
            .unwrap()
            .run_to_completion()
            .unwrap();

        assert_eq!(result.learned.dispatch_width, defaults.dispatch_width);
        assert_eq!(
            result.learned.reorder_buffer_size,
            defaults.reorder_buffer_size
        );
        for (learned, default) in result.learned.per_inst.iter().zip(&defaults.per_inst) {
            assert_eq!(learned.num_micro_ops, default.num_micro_ops);
            assert_eq!(learned.port_map, default.port_map);
            assert_eq!(learned.read_advance_cycles, default.read_advance_cycles);
        }
        // The write latencies of opcodes that appear in the training set should
        // have been touched by the optimizer for at least some opcodes.
        let changed = result
            .learned
            .per_inst
            .iter()
            .zip(&result.initial.per_inst)
            .filter(|(l, i)| l.write_latency != i.write_latency)
            .count();
        assert!(changed > 0, "training must move at least one write latency");
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        let config = DiffTuneConfig {
            simulated_multiplier: 0.0,
            ..DiffTuneConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(DiffTuneError::InvalidConfig {
                field: "simulated_multiplier",
                ..
            })
        ));

        let config = DiffTuneConfig {
            table_batch_size: 0,
            ..DiffTuneConfig::default()
        };
        assert!(config.validate().is_err());

        let config = DiffTuneConfig {
            surrogate_train: TrainConfig {
                batch_size: 0,
                ..TrainConfig::default()
            },
            ..DiffTuneConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(DiffTuneError::Surrogate(_))
        ));

        assert!(DiffTuneConfig::default().validate().is_ok());
    }
}
