//! The end-to-end DiffTune driver (Figure 1).

use difftune_isa::{BasicBlock, OpcodeId};
use difftune_sim::{SimParams, Simulator};
use difftune_surrogate::train::{train, TrainConfig, TrainReport};
use difftune_surrogate::{
    FeatureMlpConfig, FeatureMlpModel, IthemalConfig, IthemalModel, SurrogateModel, TokenizedBlock,
    Vocab,
};
use difftune_tensor::optim::{Adam, Optimizer};
use difftune_tensor::{Grads, Graph, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sampling::sample_table;
use crate::simdata::generate_simulated_dataset;
use crate::spec::ParamSpec;
use crate::theta::ThetaTable;

/// Which surrogate family to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurrogateKind {
    /// The Ithemal-style LSTM surrogate from the paper (Figure 3).
    Lstm(IthemalConfig),
    /// The fast feature-MLP surrogate (used for ablations and quick runs).
    Mlp(FeatureMlpConfig),
}

/// Configuration of a DiffTune run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffTuneConfig {
    /// Which surrogate family to train.
    pub surrogate: SurrogateKind,
    /// Size of the simulated dataset as a multiple of the training set (the
    /// paper uses 10×).
    pub simulated_multiplier: f64,
    /// Hard cap on the simulated dataset size (keeps laptop-scale runs fast).
    pub max_simulated: usize,
    /// Surrogate training hyperparameters (Equation 2; the paper uses Adam
    /// with learning rate 1e-3 and batch size 256).
    pub surrogate_train: TrainConfig,
    /// Learning rate for the parameter table (Equation 3; the paper uses 0.05).
    pub table_learning_rate: f32,
    /// Epochs of parameter-table training over the ground-truth training set
    /// (the paper uses 1).
    pub table_epochs: usize,
    /// Batch size for parameter-table training.
    pub table_batch_size: usize,
    /// Keep θ inside the sampling distribution's range during optimization
    /// (the surrogate is only trained inside that region; see Section VII).
    pub clamp_to_sampling: bool,
    /// Random seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for DiffTuneConfig {
    /// A laptop-scale configuration using the fast feature-MLP surrogate; the
    /// paper-faithful LSTM surrogate is selected by the benchmark binaries via
    /// [`SurrogateKind::Lstm`].
    fn default() -> Self {
        DiffTuneConfig {
            surrogate: SurrogateKind::Mlp(FeatureMlpConfig::default()),
            simulated_multiplier: 5.0,
            max_simulated: 60_000,
            surrogate_train: TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            table_learning_rate: 0.05,
            table_epochs: 1,
            table_batch_size: 256,
            clamp_to_sampling: true,
            seed: 0,
            threads: 0,
        }
    }
}

/// The outcome of a DiffTune run.
#[derive(Debug)]
pub struct DiffTuneResult {
    /// The learned parameter table, ready to plug back into the simulator.
    pub learned: SimParams,
    /// The randomly initialized table the optimization started from.
    pub initial: SimParams,
    /// Surrogate training statistics (Equation 2).
    pub surrogate_report: TrainReport,
    /// Mean parameter-table training loss per epoch (Equation 3).
    pub table_losses: Vec<f64>,
    /// The trained surrogate (useful for analyses such as Figure 2).
    pub surrogate: Box<dyn SurrogateModel>,
    /// Number of learned scalar parameters.
    pub num_learned_parameters: usize,
}

/// The DiffTune optimization driver.
#[derive(Debug, Clone)]
pub struct DiffTune {
    config: DiffTuneConfig,
}

impl DiffTune {
    /// Creates a driver with the given configuration.
    pub fn new(config: DiffTuneConfig) -> Self {
        DiffTune { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DiffTuneConfig {
        &self.config
    }

    /// Builds (but does not train) the configured surrogate.
    pub fn build_surrogate(&self) -> Box<dyn SurrogateModel> {
        match self.config.surrogate {
            SurrogateKind::Lstm(config) => Box::new(IthemalModel::new(config)),
            SurrogateKind::Mlp(config) => Box::new(FeatureMlpModel::new(config)),
        }
    }

    /// Runs the full DiffTune pipeline against a simulator and a ground-truth
    /// training set of `(block, measured timing)` pairs.
    pub fn run(
        &self,
        simulator: &dyn Simulator,
        spec: &ParamSpec,
        defaults: &SimParams,
        train_set: &[(BasicBlock, f64)],
    ) -> DiffTuneResult {
        assert!(
            !train_set.is_empty(),
            "DiffTune needs a non-empty training set"
        );
        let blocks: Vec<BasicBlock> = train_set
            .iter()
            .filter(|(b, _)| !b.is_empty())
            .map(|(b, _)| b.clone())
            .collect();

        // Step 2 (Figure 1): simulated dataset.
        let simulated_size = ((blocks.len() as f64 * self.config.simulated_multiplier) as usize)
            .clamp(1, self.config.max_simulated);
        let simulated = generate_simulated_dataset(
            simulator,
            spec,
            defaults,
            &blocks,
            simulated_size,
            self.config.seed,
            self.config.threads,
        );

        // Step 3: train the surrogate to mimic the simulator.
        let mut surrogate = self.build_surrogate();
        let surrogate_report = train(&mut surrogate, &simulated, &self.config.surrogate_train);

        // Step 4: train the parameter table through the frozen surrogate.
        let (theta, table_losses, initial) =
            self.train_table(&*surrogate, spec, defaults, train_set);

        DiffTuneResult {
            learned: theta.to_sim_params(),
            initial,
            surrogate_report,
            table_losses,
            surrogate,
            num_learned_parameters: spec.num_learned(defaults.num_opcodes()),
        }
    }

    /// Equation 3: gradient descent on θ through the frozen surrogate.
    fn train_table(
        &self,
        surrogate: &dyn SurrogateModel,
        spec: &ParamSpec,
        defaults: &SimParams,
        train_set: &[(BasicBlock, f64)],
    ) -> (ThetaTable, Vec<f64>, SimParams) {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let default_theta = ThetaTable::from_table(defaults);

        // Initialize the table to a random sample from the sampling
        // distribution (Section IV), keeping unlearned entries at the defaults.
        let initial_table = sample_table(&mut rng, spec, defaults);
        let mut theta = ThetaTable::from_table(&initial_table);
        theta.freeze_unlearned(spec, &default_theta);
        let initial = theta.to_sim_params();

        // The optimization store: frozen surrogate weights plus θ. Only θ ever
        // receives optimizer updates.
        let mut store = surrogate.params().clone();
        let theta_id = store.add("difftune.theta", theta.tensor());
        let mut optimizer = Adam::new(self.config.table_learning_rate);

        let vocab = Vocab::new();
        let samples: Vec<(TokenizedBlock, Vec<OpcodeId>, f64)> = train_set
            .iter()
            .filter(|(block, _)| !block.is_empty())
            .map(|(block, timing)| {
                let tokenized = vocab.tokenize_block(block);
                let opcodes = tokenized.insts.iter().map(|inst| inst.opcode).collect();
                (tokenized, opcodes, *timing)
            })
            .collect();

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut losses = Vec::with_capacity(self.config.table_epochs);
        for _ in 0..self.config.table_epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.config.table_batch_size) {
                let seed = 1.0 / batch.len() as f32;
                let batch_refs: Vec<&(TokenizedBlock, Vec<OpcodeId>, f64)> =
                    batch.iter().map(|&i| &samples[i]).collect();

                let grad_of = |shard: &[&(TokenizedBlock, Vec<OpcodeId>, f64)]| -> (f64, Grads) {
                    let mut grads = Grads::new(&store);
                    let mut loss_total = 0.0;
                    for (block, opcodes, timing) in shard.iter().copied() {
                        let mut graph = Graph::new(&store);
                        let theta_var = graph.param(theta_id);
                        let (features, global) =
                            ThetaTable::feature_vars(&mut graph, theta_var, opcodes);
                        let prediction =
                            surrogate.forward(&mut graph, block, Some(&features), Some(global));
                        let target = timing.max(1e-3) as f32;
                        let target_var = graph.input(Tensor::scalar(target));
                        let diff = graph.sub(prediction, target_var);
                        let abs = graph.abs(diff);
                        let loss = graph.scale(abs, 1.0 / target);
                        loss_total += f64::from(graph.value(loss)[0]);
                        graph.backward_scaled(loss, &mut grads, seed);
                    }
                    (loss_total, grads)
                };

                let (batch_loss, grads) = if threads <= 1 || batch_refs.len() < 8 {
                    grad_of(&batch_refs)
                } else {
                    let chunk = batch_refs.len().div_ceil(threads);
                    let results: Vec<(f64, Grads)> = std::thread::scope(|scope| {
                        let handles: Vec<_> = batch_refs
                            .chunks(chunk)
                            .map(|shard| scope.spawn(move || grad_of(shard)))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("table-training worker panicked"))
                            .collect()
                    });
                    let mut total = 0.0;
                    let mut merged = Grads::new(&store);
                    for (loss, local) in results {
                        total += loss;
                        merged.merge(&local);
                    }
                    (total, merged)
                };

                // Keep the surrogate frozen: only θ's gradient reaches the optimizer.
                let mut theta_grads = Grads::new(&store);
                if let Some(grad) = grads.get(theta_id) {
                    theta_grads.accumulate(theta_id, grad, 1.0);
                }
                optimizer.step(&mut store, &theta_grads);

                // Restore any frozen entries to their default values and keep
                // the learned entries inside the surrogate's training region.
                let mut updated = ThetaTable::from_tensor(store.get(theta_id));
                if self.config.clamp_to_sampling {
                    updated.clamp_to_sampling(spec);
                }
                updated.freeze_unlearned(spec, &default_theta);
                *store.get_mut(theta_id) = updated.tensor();

                epoch_loss += batch_loss;
            }
            losses.push(epoch_loss / samples.len().max(1) as f64);
        }

        let final_theta = ThetaTable::from_tensor(store.get(theta_id));
        (final_theta, losses, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_sim::{McaSimulator, Simulator};

    fn tiny_train_set(simulator: &McaSimulator, truth: &SimParams) -> Vec<(BasicBlock, f64)> {
        [
            "addq %rax, %rbx",
            "addq %rax, %rbx\naddq %rbx, %rcx",
            "imulq %rbx, %rcx\naddq %rcx, %rax",
            "movq (%rdi), %rax\naddq %rax, %rbx",
            "pushq %rbx\ntestl %r8d, %r8d",
            "xorl %eax, %eax\naddl %eax, %ebx",
            "mulsd %xmm0, %xmm1\naddsd %xmm1, %xmm2",
            "subq %rdx, %rsi\nleaq 8(%rsi), %rdi",
            "shrq $3, %rax\norq %rax, %rbx",
            "movq %rax, 8(%rsp)\nmovq 8(%rsp), %rbx",
        ]
        .iter()
        .map(|text| {
            let block: BasicBlock = text.parse().unwrap();
            let timing = simulator.predict(truth, &block);
            (block, timing)
        })
        .collect()
    }

    fn fast_config() -> DiffTuneConfig {
        DiffTuneConfig {
            surrogate: SurrogateKind::Mlp(FeatureMlpConfig {
                hidden_dim: 24,
                ..FeatureMlpConfig::default()
            }),
            simulated_multiplier: 40.0,
            max_simulated: 400,
            surrogate_train: TrainConfig {
                epochs: 10,
                batch_size: 64,
                threads: 1,
                ..TrainConfig::default()
            },
            table_learning_rate: 0.05,
            table_epochs: 4,
            table_batch_size: 10,
            clamp_to_sampling: true,
            seed: 3,
            threads: 1,
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_and_respects_constraints() {
        // Ground truth produced by the simulator itself under a "true" table:
        // the surrogate-based optimization should produce a valid table and
        // reduce the training loss.
        let simulator = McaSimulator::new(16);
        let mut truth = SimParams::uniform_default();
        for entry in &mut truth.per_inst {
            entry.write_latency = 3;
        }
        let train_set = tiny_train_set(&simulator, &truth);
        let defaults = SimParams::uniform_default();

        let difftune = DiffTune::new(fast_config());
        let result = difftune.run(&simulator, &ParamSpec::llvm_mca(), &defaults, &train_set);

        assert_eq!(result.learned.num_opcodes(), defaults.num_opcodes());
        assert!(result.learned.dispatch_width >= 1);
        assert!(result.learned.reorder_buffer_size >= 1);
        assert!(result.learned.per_inst.iter().all(|p| p.num_micro_ops >= 1));
        assert!(result.surrogate_report.final_loss().is_finite());
        assert!(!result.table_losses.is_empty());
        assert!(
            result.table_losses.last().unwrap() <= result.table_losses.first().unwrap(),
            "table training loss should not increase: {:?}",
            result.table_losses
        );
        assert_eq!(
            result.num_learned_parameters,
            ParamSpec::llvm_mca().num_learned(defaults.num_opcodes())
        );
    }

    #[test]
    fn write_latency_only_spec_keeps_other_parameters_at_defaults() {
        let simulator = McaSimulator::new(16);
        let truth = SimParams::uniform_default();
        let train_set = tiny_train_set(&simulator, &truth);
        let defaults = difftune_cpu::default_params(difftune_cpu::Microarch::Haswell);

        let mut config = fast_config();
        config.table_epochs = 60;
        config.table_learning_rate = 0.3;
        let difftune = DiffTune::new(config);
        let result = difftune.run(
            &simulator,
            &ParamSpec::write_latency_only(),
            &defaults,
            &train_set,
        );

        assert_eq!(result.learned.dispatch_width, defaults.dispatch_width);
        assert_eq!(
            result.learned.reorder_buffer_size,
            defaults.reorder_buffer_size
        );
        for (learned, default) in result.learned.per_inst.iter().zip(&defaults.per_inst) {
            assert_eq!(learned.num_micro_ops, default.num_micro_ops);
            assert_eq!(learned.port_map, default.port_map);
            assert_eq!(learned.read_advance_cycles, default.read_advance_cycles);
        }
        // The write latencies of opcodes that appear in the training set should
        // have been touched by the optimizer for at least some opcodes.
        let changed = result
            .learned
            .per_inst
            .iter()
            .zip(&result.initial.per_inst)
            .filter(|(l, i)| l.write_latency != i.write_latency)
            .count();
        assert!(changed > 0, "training must move at least one write latency");
    }
}
