//! Sampling parameter tables from the spec's distributions.

use rand::seq::SliceRandom;
use rand::Rng;

use difftune_sim::{SimParams, NUM_PORTS};

use crate::spec::ParamSpec;

/// Samples a random parameter table from the spec's sampling distributions.
///
/// Parameters that are not learned keep their values from `defaults`, exactly
/// as in the paper's WriteLatency-only experiment where everything else stays
/// at the expert-provided values.
pub fn sample_table<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &ParamSpec,
    defaults: &SimParams,
) -> SimParams {
    let ranges = &spec.sampling;
    let mut table = defaults.clone();

    if spec.dispatch_width {
        table.dispatch_width = rng.gen_range(ranges.dispatch_width.0..=ranges.dispatch_width.1);
    }
    if spec.reorder_buffer {
        table.reorder_buffer_size =
            rng.gen_range(ranges.reorder_buffer.0..=ranges.reorder_buffer.1);
    }

    for entry in &mut table.per_inst {
        if spec.num_micro_ops {
            entry.num_micro_ops = rng.gen_range(ranges.num_micro_ops.0..=ranges.num_micro_ops.1);
        }
        if spec.write_latency {
            entry.write_latency = rng.gen_range(ranges.write_latency.0..=ranges.write_latency.1);
        }
        if spec.read_advance {
            for slot in &mut entry.read_advance_cycles {
                *slot = rng.gen_range(ranges.read_advance.0..=ranges.read_advance.1);
            }
        }
        if spec.port_map {
            // The paper's distribution: 0–2 cycles on each of 0–2 randomly
            // selected ports.
            entry.port_map = [0; NUM_PORTS];
            let ports_used = rng.gen_range(ranges.ports_used.0..=ranges.ports_used.1) as usize;
            let mut ports: Vec<usize> = (0..NUM_PORTS).collect();
            ports.shuffle(rng);
            for &port in ports.iter().take(ports_used) {
                entry.port_map[port] = rng.gen_range(ranges.port_cycles.0..=ranges.port_cycles.1);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_sim::PerInstParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn defaults() -> SimParams {
        let mut d = SimParams::with_uniform(4, 192, PerInstParams::unit());
        d.per_inst[0].write_latency = 7;
        d
    }

    #[test]
    fn full_spec_samples_within_ranges() {
        let spec = crate::ParamSpec::llvm_mca();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let table = sample_table(&mut rng, &spec, &defaults());
            assert!((1..=10).contains(&table.dispatch_width));
            assert!((50..=250).contains(&table.reorder_buffer_size));
            for entry in &table.per_inst {
                assert!(entry.write_latency <= 5);
                assert!((1..=10).contains(&entry.num_micro_ops));
                assert!(entry.read_advance_cycles.iter().all(|&v| v <= 5));
                let used_ports = entry.port_map.iter().filter(|&&c| c > 0).count();
                assert!(used_ports <= 2, "at most two ports receive cycles");
                assert!(entry.port_map.iter().all(|&c| c <= 2));
            }
        }
    }

    #[test]
    fn unlearned_parameters_keep_their_defaults() {
        let spec = crate::ParamSpec::write_latency_only();
        let mut rng = StdRng::seed_from_u64(1);
        let base = defaults();
        let table = sample_table(&mut rng, &spec, &base);
        assert_eq!(table.dispatch_width, base.dispatch_width);
        assert_eq!(table.reorder_buffer_size, base.reorder_buffer_size);
        for (sampled, original) in table.per_inst.iter().zip(&base.per_inst) {
            assert_eq!(sampled.num_micro_ops, original.num_micro_ops);
            assert_eq!(sampled.port_map, original.port_map);
            assert!(sampled.write_latency <= 10);
        }
        // At least some write latencies should differ from the defaults.
        let changed = table
            .per_inst
            .iter()
            .zip(&base.per_inst)
            .filter(|(s, o)| s.write_latency != o.write_latency)
            .count();
        assert!(changed > table.per_inst.len() / 2);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = crate::ParamSpec::llvm_mca();
        let a = sample_table(&mut StdRng::seed_from_u64(5), &spec, &defaults());
        let b = sample_table(&mut StdRng::seed_from_u64(5), &spec, &defaults());
        assert_eq!(a, b);
    }
}
