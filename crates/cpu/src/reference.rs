//! The reference machine model and BHive-style measurement harness.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use difftune_isa::{BasicBlock, Inst, OpClass, OpcodeRegistry, RegFamily};

use crate::tables::InstTraits;
use crate::uarch::{Microarch, PortSet, UarchConfig};

/// Configuration of the measurement harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// Number of unrolled iterations timed (BHive and llvm-mca use 100).
    pub iterations: u32,
    /// Whether to apply the microarchitecture's deterministic measurement noise.
    pub apply_noise: bool,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            iterations: 100,
            apply_noise: true,
        }
    }
}

/// A reference machine: the stand-in for physical silicon.
///
/// `Machine` implements a more detailed out-of-order model than the tuned
/// simulator in `difftune-sim`: micro-ops choose the earliest-available port
/// among the ports that can actually execute them, zero idioms and (on newer
/// cores) register moves are eliminated at rename, loads pay the L1 latency,
/// and stores forward to later loads of the same address, creating memory
/// dependency chains. Measurements add a small deterministic per-block noise.
#[derive(Debug, Clone)]
pub struct Machine {
    uarch: Microarch,
    config: UarchConfig,
    measurement: MeasurementConfig,
    /// Cached traits per opcode id.
    traits: Vec<InstTraits>,
}

impl Machine {
    /// Creates the reference machine for a microarchitecture with default
    /// measurement settings.
    pub fn new(uarch: Microarch) -> Self {
        Machine::with_measurement(uarch, MeasurementConfig::default())
    }

    /// Creates the reference machine with explicit measurement settings.
    pub fn with_measurement(uarch: Microarch, measurement: MeasurementConfig) -> Self {
        Machine::with_config(uarch, uarch.config(), measurement)
    }

    /// Creates a reference machine with an explicit (possibly customized)
    /// machine configuration.
    ///
    /// The stock microarchitectures use [`Machine::new`]; this constructor
    /// exists for what-if machines — scenario sweeps that perturb port maps,
    /// window sizes, or elimination features away from the documented
    /// configuration while keeping the same opcode traits as `uarch`.
    pub fn with_config(
        uarch: Microarch,
        config: UarchConfig,
        measurement: MeasurementConfig,
    ) -> Self {
        let registry = OpcodeRegistry::global();
        let traits = registry
            .iter()
            .map(|(_, info)| InstTraits::for_opcode(uarch, info))
            .collect();
        Machine {
            uarch,
            config,
            measurement,
            traits,
        }
    }

    /// The microarchitecture this machine models.
    pub fn uarch(&self) -> Microarch {
        self.uarch
    }

    /// The machine configuration (true hardware characteristics).
    pub fn config(&self) -> &UarchConfig {
        &self.config
    }

    /// The true traits of an opcode on this machine.
    pub fn traits_of(&self, id: difftune_isa::OpcodeId) -> &InstTraits {
        &self.traits[id.index()]
    }

    /// Measures a block: cycles to execute the configured number of unrolled
    /// iterations, divided by the iteration count, with deterministic
    /// measurement noise applied (if enabled).
    pub fn measure(&self, block: &BasicBlock) -> f64 {
        let exact = self.measure_exact(block);
        if !self.measurement.apply_noise || exact == 0.0 {
            return exact;
        }
        exact * self.noise_factor(block)
    }

    /// Measures a block without measurement noise.
    pub fn measure_exact(&self, block: &BasicBlock) -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let total = self.simulate(block, self.measurement.iterations);
        total as f64 / self.measurement.iterations as f64
    }

    /// The deterministic multiplicative noise factor for a block, derived from
    /// a hash of the block text and the microarchitecture.
    fn noise_factor(&self, block: &BasicBlock) -> f64 {
        let mut hasher = DefaultHasher::new();
        self.uarch.name().hash(&mut hasher);
        block.to_string().hash(&mut hasher);
        let unit = (hasher.finish() % 10_000) as f64 / 10_000.0;
        1.0 + self.config.measurement_noise * (2.0 * unit - 1.0)
    }

    fn simulate(&self, block: &BasicBlock, iterations: u32) -> u64 {
        let statics: Vec<StaticInst> = block.iter().map(|inst| self.prepare(inst)).collect();

        let decode_width = self.config.decode_width.max(1) as u64;
        let dispatch_width = self.config.dispatch_width.max(1) as u64;
        let rob_size = self.config.rob_size.max(1) as u64;
        let load_latency = self.config.load_latency as u64;
        let forward_latency = self.config.store_forward_latency as u64;
        let num_ports = self.config.num_ports;

        let mut reg_ready = [0u64; RegFamily::COUNT];
        let mut port_free = vec![0u64; num_ports];
        let mut store_data: HashMap<MemKey, u64> = HashMap::new();
        let mut rob: VecDeque<(u64, u64)> = VecDeque::new();
        let mut rob_used = 0u64;
        let mut decode_cycle = 0u64;
        let mut decode_slots = decode_width;
        let mut dispatch_cycle = 0u64;
        let mut dispatch_slots = dispatch_width;
        let mut last_retire = 0u64;

        for _ in 0..iterations {
            for inst in &statics {
                // Frontend decode.
                if decode_slots == 0 {
                    decode_cycle += 1;
                    decode_slots = decode_width;
                }
                decode_slots -= 1;
                let decoded = decode_cycle;

                // Reorder buffer + dispatch.
                let uops = inst.total_uops.max(1).min(rob_size);
                let mut rob_free_cycle = 0u64;
                while rob_used + uops > rob_size {
                    match rob.pop_front() {
                        Some((retire, n)) => {
                            rob_used -= n;
                            rob_free_cycle = retire;
                        }
                        None => break,
                    }
                }
                let start_floor = decoded.max(rob_free_cycle);
                if start_floor > dispatch_cycle {
                    dispatch_cycle = start_floor;
                    dispatch_slots = dispatch_width;
                }
                let mut remaining = uops;
                loop {
                    if dispatch_slots == 0 {
                        dispatch_cycle += 1;
                        dispatch_slots = dispatch_width;
                    }
                    let take = remaining.min(dispatch_slots);
                    dispatch_slots -= take;
                    remaining -= take;
                    if remaining == 0 {
                        break;
                    }
                }
                let dispatched = dispatch_cycle;

                // Eliminated instructions: zero idioms break dependencies and
                // register moves inherit the source's readiness; neither uses a
                // port.
                if inst.zero_idiom && self.config.zero_idiom_elimination {
                    for family in &inst.writes {
                        reg_ready[family.index()] = dispatched;
                    }
                    let retire = dispatched.max(last_retire);
                    last_retire = retire;
                    rob.push_back((retire, uops));
                    rob_used += uops;
                    continue;
                }
                if inst.reg_move && self.config.move_elimination {
                    let source_ready = inst
                        .reads
                        .iter()
                        .map(|f| reg_ready[f.index()])
                        .max()
                        .unwrap_or(dispatched);
                    let ready = source_ready.max(dispatched);
                    for family in &inst.writes {
                        reg_ready[family.index()] = ready;
                    }
                    let retire = ready.max(last_retire);
                    last_retire = retire;
                    rob.push_back((retire, uops));
                    rob_used += uops;
                    continue;
                }

                // Address computation inputs.
                let addr_ready = inst
                    .addr_reads
                    .iter()
                    .map(|f| reg_ready[f.index()])
                    .max()
                    .unwrap_or(0)
                    .max(dispatched);

                // Load micro-op.
                let mut loaded_ready = 0u64;
                let mut max_uop_end = dispatched;
                if inst.loads {
                    let (port, free) = best_port(&port_free, self.config.load_ports);
                    let start = addr_ready.max(free);
                    port_free[port] = start + 1;
                    max_uop_end = max_uop_end.max(start + 1);
                    let mut value_at = start + load_latency;
                    if let Some(key) = inst.mem_key {
                        if let Some(&store_ready) = store_data.get(&key) {
                            value_at = value_at.max(store_ready + forward_latency + load_latency);
                        }
                    }
                    loaded_ready = value_at;
                }

                // Compute micro-ops.
                let mut input_ready = dispatched;
                for family in &inst.reads {
                    input_ready = input_ready.max(reg_ready[family.index()]);
                }
                if inst.loads {
                    input_ready = input_ready.max(loaded_ready);
                }
                let mut compute_start = input_ready;
                for k in 0..inst.compute_uops {
                    let (port, free) = best_port(&port_free, inst.ports);
                    let start = input_ready.max(free);
                    // Non-pipelined units (dividers) block their port once per
                    // instruction, not once per micro-op.
                    let busy = if k == 0 { 1 + inst.blocking as u64 } else { 1 };
                    port_free[port] = start + busy;
                    compute_start = compute_start.max(start);
                    max_uop_end = max_uop_end.max(start + busy);
                }

                let result_ready = if inst.compute_uops > 0 {
                    compute_start + inst.latency as u64
                } else if inst.loads {
                    loaded_ready
                } else {
                    dispatched
                };

                // Publish register results. The stack engine renames %rsp at
                // dispatch, so stack-pointer updates are effectively free.
                for family in &inst.writes {
                    let ready = if *family == RegFamily::Rsp && inst.class == OpClass::Stack {
                        dispatched
                    } else {
                        result_ready
                    };
                    reg_ready[family.index()] = ready;
                }

                // Store micro-op: address and data must both be ready.
                if inst.stores {
                    let (port, free) = best_port(&port_free, self.config.store_ports);
                    let data_ready = if inst.compute_uops > 0 {
                        result_ready
                    } else {
                        input_ready
                    };
                    let start = addr_ready.max(data_ready).max(free);
                    port_free[port] = start + 1;
                    max_uop_end = max_uop_end.max(start + 1);
                    if let Some(key) = inst.mem_key {
                        store_data.insert(key, start);
                    }
                }

                let execute_end = max_uop_end.max(result_ready);
                let retire = execute_end.max(last_retire);
                last_retire = retire;
                rob.push_back((retire, uops));
                rob_used += uops;
            }
        }

        last_retire
    }

    fn prepare(&self, inst: &Inst) -> StaticInst {
        let info = inst.info();
        let traits = &self.traits[inst.opcode().index()];
        let class = info.class();
        let loads = inst.loads();
        let stores = inst.stores();
        let addr_reads: Vec<RegFamily> = inst
            .mem_operand()
            .map(|m| m.address_regs().collect())
            .unwrap_or_default();
        // Register sources feeding the computation (address registers feed the
        // AGU instead).
        let reads: Vec<RegFamily> = inst
            .reads()
            .into_iter()
            .filter(|f| !addr_reads.contains(f))
            .collect();
        let total_uops = traits.compute_uops as u64 + u64::from(loads) + u64::from(stores);
        StaticInst {
            class,
            reads,
            addr_reads,
            writes: inst.writes(),
            loads,
            stores,
            mem_key: inst.mem_operand().map(MemKey::from_mem),
            zero_idiom: inst.is_zero_idiom(),
            reg_move: info.mnemonic() == difftune_isa::Mnemonic::Mov
                && info.form() == difftune_isa::Form::Rr,
            compute_uops: traits.compute_uops,
            latency: traits.latency,
            blocking: traits.blocking_cycles,
            ports: self.config.ports_for(class),
            total_uops: total_uops.max(1),
        }
    }
}

/// Picks the earliest-free port among a candidate set; returns (port, free cycle).
fn best_port(port_free: &[u64], candidates: PortSet) -> (usize, u64) {
    let mut best = (0usize, u64::MAX);
    for (port, &free) in port_free.iter().enumerate() {
        if candidates & (1 << port) != 0 && free < best.1 {
            best = (port, free);
        }
    }
    if best.1 == u64::MAX {
        // No candidate port (should not happen for executable classes): fall
        // back to port 0 so simulation still makes progress.
        (0, port_free[0])
    } else {
        best
    }
}

/// A key identifying a memory location for store-to-load forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemKey {
    base: Option<RegFamily>,
    index: Option<RegFamily>,
    scale: u8,
    disp: i32,
}

impl MemKey {
    fn from_mem(mem: &difftune_isa::MemRef) -> Self {
        MemKey {
            base: mem.base.map(|r| r.family()),
            index: mem.index.map(|r| r.family()),
            scale: mem.scale,
            disp: mem.disp,
        }
    }
}

struct StaticInst {
    class: OpClass,
    reads: Vec<RegFamily>,
    addr_reads: Vec<RegFamily>,
    writes: Vec<RegFamily>,
    loads: bool,
    stores: bool,
    mem_key: Option<MemKey>,
    zero_idiom: bool,
    reg_move: bool,
    compute_uops: u32,
    latency: u32,
    blocking: u32,
    ports: PortSet,
    total_uops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(text: &str) -> BasicBlock {
        text.parse().expect("test block parses")
    }

    fn haswell() -> Machine {
        Machine::with_measurement(
            Microarch::Haswell,
            MeasurementConfig {
                iterations: 100,
                apply_noise: false,
            },
        )
    }

    #[test]
    fn push_test_pair_takes_about_one_cycle() {
        // Paper case study: `pushq %rbx ; testl %r8d, %r8d` measures 1.01 cycles.
        let timing = haswell().measure_exact(&block("pushq %rbx\ntestl %r8d, %r8d"));
        assert!(
            (timing - 1.0).abs() < 0.3,
            "expected ~1 cycle per iteration, got {timing}"
        );
    }

    #[test]
    fn zero_idiom_is_faster_than_a_dependent_xor() {
        // Paper case study: `xorl %r13d, %r13d` measures 0.31 cycles (bounded
        // only by rename/retire bandwidth).
        let machine = haswell();
        let idiom = machine.measure_exact(&block("xorl %r13d, %r13d"));
        let real = machine.measure_exact(&block("xorl %eax, %r13d"));
        assert!(
            idiom < 0.5,
            "zero idiom should be well under a cycle, got {idiom}"
        );
        assert!(
            real >= 1.0,
            "a real xor carries a dependency chain, got {real}"
        );
    }

    #[test]
    fn rmw_memory_chain_matches_case_study_shape() {
        // Paper case study: `addl %eax, 16(%rsp)` measures 5.97 cycles because
        // the load, add, and store chain through the same address.
        let timing = haswell().measure_exact(&block("addl %eax, 16(%rsp)"));
        assert!(
            (4.5..8.0).contains(&timing),
            "RMW chain should cost roughly load+add+forward per iteration, got {timing}"
        );
    }

    #[test]
    fn dependent_adds_are_latency_bound_independent_adds_are_not() {
        let machine = haswell();
        let dependent = machine.measure_exact(&block("addq %rax, %rbx\naddq %rbx, %rcx"));
        let independent = machine.measure_exact(&block("addq %rax, %rbx\naddq %rcx, %rdx"));
        assert!(dependent >= independent, "{dependent} vs {independent}");
        assert!(
            independent <= 1.2,
            "two independent adds fit in one cycle on four ALU ports"
        );
    }

    #[test]
    fn division_is_much_slower_than_addition() {
        let machine = haswell();
        let div = machine.measure_exact(&block("idivq %rcx"));
        let add = machine.measure_exact(&block("addq %rcx, %rax"));
        assert!(div > add * 5.0, "divide {div} should dwarf add {add}");
    }

    #[test]
    fn move_elimination_only_on_newer_cores() {
        let mov = block("movq %rax, %rbx\naddq %rbx, %rcx\nmovq %rcx, %rax");
        let ivb = Machine::with_measurement(
            Microarch::IvyBridge,
            MeasurementConfig {
                iterations: 100,
                apply_noise: false,
            },
        );
        let hsw = haswell();
        assert!(hsw.measure_exact(&mov) <= ivb.measure_exact(&mov));
    }

    #[test]
    fn measurements_differ_across_microarchitectures() {
        let b = block("mulsd %xmm1, %xmm0\naddsd %xmm0, %xmm2\ndivsd %xmm3, %xmm4");
        let timings: Vec<f64> = Microarch::ALL
            .iter()
            .map(|&u| {
                Machine::with_measurement(
                    u,
                    MeasurementConfig {
                        iterations: 100,
                        apply_noise: false,
                    },
                )
                .measure_exact(&b)
            })
            .collect();
        let distinct = timings
            .iter()
            .filter(|&&t| (t - timings[0]).abs() > 1e-6)
            .count();
        assert!(
            distinct >= 1,
            "at least one microarchitecture should differ: {timings:?}"
        );
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let machine = Machine::new(Microarch::Haswell);
        let b = block("addq %rax, %rbx\nmovq (%rdi), %rcx");
        let a = machine.measure(&b);
        let c = machine.measure(&b);
        let exact = machine.measure_exact(&b);
        assert_eq!(a, c, "noise must be deterministic");
        assert!((a - exact).abs() / exact < 0.05, "noise must stay small");
    }

    #[test]
    fn custom_machine_configs_change_measurements() {
        // A what-if Haswell with a 1-wide dispatch must be slower on
        // throughput-bound code than the documented 4-wide machine.
        let measurement = MeasurementConfig {
            iterations: 100,
            apply_noise: false,
        };
        let mut narrow_config = Microarch::Haswell.config();
        narrow_config.dispatch_width = 1;
        narrow_config.decode_width = 1;
        let narrow = Machine::with_config(Microarch::Haswell, narrow_config, measurement);
        let stock = haswell();
        let b = block("addq %rax, %rbx\naddq %rcx, %rdx\naddq %rsi, %rdi\naddq %r8, %r9");
        assert!(narrow.measure_exact(&b) > stock.measure_exact(&b));
        assert_eq!(narrow.uarch(), Microarch::Haswell);
    }

    #[test]
    fn empty_block_measures_zero() {
        assert_eq!(haswell().measure(&BasicBlock::new()), 0.0);
    }

    #[test]
    fn longer_blocks_take_longer() {
        let machine = haswell();
        let short = machine.measure_exact(&block("imulq %rbx, %rax"));
        let long = machine.measure_exact(&block(
            "imulq %rbx, %rax\nimulq %rax, %rcx\nimulq %rcx, %rdx",
        ));
        assert!(long > short);
    }
}
