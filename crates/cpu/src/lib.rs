//! # difftune-cpu
//!
//! Reference microarchitecture models that stand in for the physical CPUs the
//! paper measures with BHive (Ivy Bridge, Haswell, Skylake, and Zen 2).
//!
//! The paper's ground truth is hardware: basic blocks timed with performance
//! counters on real silicon. This workspace has no silicon, so this crate
//! provides the closest synthetic equivalent: per-microarchitecture reference
//! models that are deliberately *richer* than the tuned simulator in
//! `difftune-sim` — they choose among candidate execution ports, eliminate
//! zero idioms and register moves, charge an L1 latency on loads, forward
//! stores to dependent loads (creating memory dependency chains the tuned
//! simulator cannot express), and add a small deterministic measurement noise.
//! This reproduces the structural mismatch between simulator and machine that
//! the paper's case studies discuss (PUSH64r, XOR32rr, ADD32mr).
//!
//! The crate also provides:
//!
//! * [`Machine::measure`] — the BHive-style measurement harness (timing of 100
//!   unrolled iterations of a block, divided by 100);
//! * [`default_params`] — the "expert-provided" llvm-mca-style parameter table
//!   for each microarchitecture, derived from the reference model's documented
//!   latencies the way LLVM's scheduling models are derived from vendor
//!   documentation (imperfectly, by design);
//! * [`AnalyticalModel`] — an IACA-style analytical throughput/latency bound
//!   model used as a non-learned baseline in Table IV.
//!
//! # Example
//!
//! ```
//! use difftune_cpu::{Machine, Microarch};
//!
//! let haswell = Machine::new(Microarch::Haswell);
//! let block = "xorl %r13d, %r13d".parse()?;
//! let timing = haswell.measure(&block);
//! assert!(timing < 1.0, "a zero idiom retires faster than one cycle per iteration");
//! # Ok::<(), difftune_isa::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytical;
mod docs;
mod reference;
mod tables;
mod uarch;

pub use analytical::AnalyticalModel;
pub use docs::default_params;
pub use reference::{Machine, MeasurementConfig};
pub use tables::InstTraits;
pub use uarch::{Microarch, UarchConfig};
