//! "Vendor documentation": the expert-provided default simulator parameters.
//!
//! The paper's default llvm-mca parameters come from LLVM's hand-written
//! scheduling models, which are in turn derived from vendor manuals and
//! third-party measurements — imperfectly, because the simulator's parameter
//! semantics do not exactly match what the documentation describes
//! (Section II-B of the paper). This module reproduces that derivation against
//! the reference machines in this crate:
//!
//! * `WriteLatency` is the documented latency, which includes the load-to-use
//!   latency for memory forms, is never zero for dependency-breaking idioms
//!   (the documentation documents the ALU, not the renamer), and reports a
//!   2-cycle store-pipeline latency for push/pop.
//! * `PortMap` entries are only filled in for operations tied to one specific
//!   port; operations that can execute on a *group* of ports are left at zero,
//!   matching the paper's choice to zero out port-group parameters.
//! * `NumMicroOps` counts compute plus load plus store micro-ops.
//! * `ReadAdvanceCycles` default to zero.
//! * The global `DispatchWidth`/`ReorderBufferSize` come straight from the
//!   documented machine configuration.

use difftune_isa::{OpClass, OpcodeRegistry};
use difftune_sim::{PerInstParams, SimParams, NUM_PORTS, NUM_READ_ADVANCE};

use crate::tables::InstTraits;
use crate::uarch::Microarch;

/// Builds the expert-provided default parameter table for a microarchitecture.
pub fn default_params(uarch: Microarch) -> SimParams {
    let registry = OpcodeRegistry::global();
    let config = uarch.config();
    let mut per_inst = Vec::with_capacity(registry.len());

    for (_, info) in registry.iter() {
        let traits = InstTraits::for_opcode(uarch, info);
        let class = info.class();

        // Documented latency: the manuals report latency from the memory
        // operand for memory forms, never report zero for ALU idioms, and list
        // push/pop with the store pipeline latency.
        let write_latency = match class {
            OpClass::Stack => 2,
            OpClass::Nop => 1,
            _ => traits.documented_latency(info, config.load_latency).max(1),
        };

        let num_micro_ops =
            (traits.compute_uops + u32::from(info.loads()) + u32::from(info.stores())).max(1);

        // Port map: only single-port resources are documented per port;
        // port-group resources are zeroed (paper Section V-A).
        let mut port_map = [0u32; NUM_PORTS];
        let compute_ports = config.ports_for(class);
        if compute_ports.count_ones() == 1 && traits.compute_uops > 0 {
            let port = compute_ports.trailing_zeros() as usize;
            if port < NUM_PORTS {
                port_map[port] = 1 + traits.blocking_cycles;
            }
        }
        if info.stores() && config.store_ports.count_ones() == 1 {
            let port = config.store_ports.trailing_zeros() as usize;
            if port < NUM_PORTS {
                port_map[port] += 1;
            }
        }

        per_inst.push(PerInstParams {
            num_micro_ops,
            write_latency,
            read_advance_cycles: [0; NUM_READ_ADVANCE],
            port_map,
        });
    }

    SimParams {
        dispatch_width: config.dispatch_width,
        reorder_buffer_size: config.rob_size,
        per_inst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::BasicBlock;
    use difftune_sim::{McaSimulator, Simulator};

    #[test]
    fn default_globals_match_documented_machine_configuration() {
        let params = default_params(Microarch::Haswell);
        assert_eq!(params.dispatch_width, 4);
        assert_eq!(params.reorder_buffer_size, 192);
    }

    #[test]
    fn push_has_the_documented_two_cycle_latency_and_store_port() {
        // This is the mismatch the paper's PUSH64r case study hinges on.
        let registry = OpcodeRegistry::global();
        let params = default_params(Microarch::Haswell);
        let push = params.inst(registry.by_name("PUSH64r").unwrap());
        assert_eq!(push.write_latency, 2);
        assert_eq!(push.port_map[4], 1, "push occupies the store port");
    }

    #[test]
    fn zero_idiom_capable_xor_still_documents_one_cycle() {
        let registry = OpcodeRegistry::global();
        let params = default_params(Microarch::Haswell);
        let xor = params.inst(registry.by_name("XOR32rr").unwrap());
        assert_eq!(
            xor.write_latency, 1,
            "documentation does not know about the renamer fast path"
        );
    }

    #[test]
    fn memory_forms_document_load_to_use_latency() {
        let registry = OpcodeRegistry::global();
        let params = default_params(Microarch::Haswell);
        let add_rr = params.inst(registry.by_name("ADD32rr").unwrap());
        let add_rm = params.inst(registry.by_name("ADD32rm").unwrap());
        assert!(add_rm.write_latency >= add_rr.write_latency + 4);
    }

    #[test]
    fn defaults_differ_across_microarchitectures() {
        let hsw = default_params(Microarch::Haswell);
        let skl = default_params(Microarch::Skylake);
        let zen = default_params(Microarch::Zen2);
        assert_ne!(hsw, skl);
        assert_ne!(hsw, zen);
        assert_eq!(hsw.num_opcodes(), skl.num_opcodes());
    }

    #[test]
    fn defaults_give_sane_predictions_on_simple_blocks() {
        let params = default_params(Microarch::Haswell);
        let sim = McaSimulator::default();
        let add: BasicBlock = "addq %rax, %rbx\naddq %rbx, %rcx".parse().unwrap();
        let timing = sim.predict(&params, &add);
        assert!(
            (1.0..4.0).contains(&timing),
            "chained adds should take ~2 cycles, got {timing}"
        );

        // The paper's push case study: default parameters over-predict.
        let push: BasicBlock = "pushq %rbx\ntestl %r8d, %r8d".parse().unwrap();
        let push_timing = sim.predict(&params, &push);
        assert!(
            (1.8..2.5).contains(&push_timing),
            "default push latency predicts ~2 cycles, got {push_timing}"
        );
    }
}
