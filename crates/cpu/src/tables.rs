//! The hidden "true" per-opcode characteristics of each reference
//! microarchitecture.
//!
//! These tables play the role of the physical machine's actual behaviour. They
//! are never read by DiffTune; only the measurement harness
//! ([`crate::Machine`]) and the analytical baseline ([`crate::AnalyticalModel`])
//! use them. The "expert documentation" that seeds the default simulator
//! parameters ([`crate::default_params`]) is derived from them with the kinds
//! of simplifications real vendor documentation makes.

use serde::{Deserialize, Serialize};

use difftune_isa::{Mnemonic, OpClass, OpcodeInfo, Width};

use crate::uarch::Microarch;

/// True execution characteristics of one opcode on one microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstTraits {
    /// Dependency latency of the compute operation in cycles (excluding any
    /// load-to-use latency, which the reference model adds separately).
    pub latency: u32,
    /// Number of compute micro-ops (excluding load/store micro-ops).
    pub compute_uops: u32,
    /// Extra cycles the execution port stays blocked beyond the first
    /// (non-pipelined units such as dividers); zero means fully pipelined.
    pub blocking_cycles: u32,
}

impl InstTraits {
    /// The true characteristics of `info` on `uarch`.
    pub fn for_opcode(uarch: Microarch, info: &OpcodeInfo) -> Self {
        let class = info.class();
        let width = info.width();
        let mnemonic = info.mnemonic();

        let mut latency = base_latency(class, width, mnemonic);
        let mut compute_uops = base_compute_uops(class, width, mnemonic);
        let mut blocking = 0;

        // Per-microarchitecture adjustments.
        match uarch {
            Microarch::IvyBridge => {
                latency = match class {
                    OpClass::FpDiv => latency + 6,
                    OpClass::FpSqrt => latency + 5,
                    OpClass::IntDiv => latency + 8,
                    OpClass::VecMul => latency + 1,
                    _ => latency,
                };
                // Ivy Bridge splits 256-bit integer vector operations.
                if width == Width::B256 && class.is_vector() {
                    compute_uops += 1;
                }
            }
            Microarch::Haswell => {}
            Microarch::Skylake => {
                latency = match class {
                    OpClass::FpAdd => 4,
                    OpClass::FpMul => 4,
                    OpClass::Fma => 4,
                    OpClass::FpDiv => latency.saturating_sub(2),
                    OpClass::IntDiv => latency.saturating_sub(4),
                    _ => latency,
                };
            }
            Microarch::Zen2 => {
                latency = match class {
                    OpClass::FpMul => 3,
                    OpClass::FpDiv => latency.saturating_sub(4),
                    OpClass::FpSqrt => latency.saturating_sub(4),
                    OpClass::IntDiv => latency.saturating_sub(8),
                    OpClass::IntMul => {
                        if width == Width::B64 {
                            4
                        } else {
                            3
                        }
                    }
                    OpClass::Convert => latency + 1,
                    _ => latency,
                };
                // Zen 2's integer divider is partially iterative but issues few micro-ops.
                if class == OpClass::IntDiv {
                    compute_uops = 2;
                }
            }
        }

        // Non-pipelined units hold their port.
        blocking = match class {
            OpClass::IntDiv => latency / 2,
            OpClass::FpDiv | OpClass::FpSqrt => latency / 3,
            _ => blocking,
        };

        InstTraits {
            latency,
            compute_uops,
            blocking_cycles: blocking,
        }
    }

    /// The latency a vendor manual would document for this opcode: the compute
    /// latency, plus the load-to-use latency for forms that read memory
    /// (documentation reports "latency from memory operand").
    pub fn documented_latency(&self, info: &OpcodeInfo, load_latency: u32) -> u32 {
        if info.loads() {
            self.latency + load_latency
        } else {
            self.latency
        }
    }
}

fn base_latency(class: OpClass, width: Width, mnemonic: Mnemonic) -> u32 {
    match class {
        OpClass::IntAlu => 1,
        OpClass::IntMul => 3,
        OpClass::IntDiv => match width {
            Width::B8 | Width::B16 => 18,
            Width::B32 => 22,
            _ => 30,
        },
        OpClass::Shift => 1,
        OpClass::Mov => 1,
        OpClass::Lea => 1,
        // The stack engine renames %rsp; push/pop have no visible compute latency.
        OpClass::Stack => 0,
        OpClass::BitScan => 3,
        OpClass::VecAlu => 1,
        OpClass::VecMul => match mnemonic {
            Mnemonic::Pmulld => 10,
            _ => 5,
        },
        OpClass::VecShuffle => 1,
        OpClass::VecMov => 1,
        OpClass::FpAdd => 3,
        OpClass::FpMul => 5,
        OpClass::FpDiv => match mnemonic {
            Mnemonic::Divss | Mnemonic::Divps => 11,
            _ => 14,
        },
        OpClass::FpSqrt => match mnemonic {
            Mnemonic::Sqrtss | Mnemonic::Sqrtps => 13,
            _ => 18,
        },
        OpClass::Fma => 5,
        OpClass::Convert => 4,
        OpClass::Nop => 0,
    }
}

fn base_compute_uops(class: OpClass, width: Width, mnemonic: Mnemonic) -> u32 {
    let base = match class {
        OpClass::IntDiv => 9,
        OpClass::IntMul if width == Width::B8 => 1,
        OpClass::Stack => 0,
        OpClass::Nop => 0,
        _ => 1,
    };
    match mnemonic {
        Mnemonic::Xchg => 3,
        Mnemonic::Cmpps => 1,
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::OpcodeRegistry;

    fn traits(uarch: Microarch, name: &str) -> InstTraits {
        let registry = OpcodeRegistry::global();
        let id = registry
            .by_name(name)
            .unwrap_or_else(|| panic!("missing opcode {name}"));
        InstTraits::for_opcode(uarch, registry.info(id))
    }

    #[test]
    fn simple_alu_is_single_cycle_everywhere() {
        for uarch in Microarch::ALL {
            let t = traits(uarch, "ADD64rr");
            assert_eq!(t.latency, 1);
            assert_eq!(t.compute_uops, 1);
            assert_eq!(t.blocking_cycles, 0);
        }
    }

    #[test]
    fn division_is_slow_and_blocking() {
        for uarch in Microarch::ALL {
            let t = traits(uarch, "DIV64r");
            assert!(t.latency >= 15, "{uarch:?} divide latency {}", t.latency);
            assert!(t.blocking_cycles > 0, "divider must block its port");
        }
    }

    #[test]
    fn skylake_shortens_fp_latencies_vs_haswell() {
        let hsw = traits(Microarch::Haswell, "MULSDrr");
        let skl = traits(Microarch::Skylake, "MULSDrr");
        assert!(skl.latency < hsw.latency);
    }

    #[test]
    fn zen2_divider_differs_from_intel() {
        let hsw = traits(Microarch::Haswell, "DIVSDrr");
        let zen = traits(Microarch::Zen2, "DIVSDrr");
        assert!(zen.latency < hsw.latency);
    }

    #[test]
    fn stack_operations_have_no_compute_latency() {
        let t = traits(Microarch::Haswell, "PUSH64r");
        assert_eq!(t.latency, 0);
        assert_eq!(t.compute_uops, 0);
    }

    #[test]
    fn documented_latency_includes_load_for_memory_forms() {
        let registry = OpcodeRegistry::global();
        let rm = registry.by_name("ADD32rm").unwrap();
        let rr = registry.by_name("ADD32rr").unwrap();
        let t_rm = InstTraits::for_opcode(Microarch::Haswell, registry.info(rm));
        let t_rr = InstTraits::for_opcode(Microarch::Haswell, registry.info(rr));
        assert_eq!(
            t_rm.documented_latency(registry.info(rm), 4),
            t_rr.latency + 4
        );
        assert_eq!(t_rr.documented_latency(registry.info(rr), 4), t_rr.latency);
    }

    #[test]
    fn every_opcode_has_finite_traits_on_every_uarch() {
        let registry = OpcodeRegistry::global();
        for uarch in Microarch::ALL {
            for (_, info) in registry.iter() {
                let t = InstTraits::for_opcode(uarch, info);
                assert!(
                    t.latency <= 64,
                    "{} has implausible latency {}",
                    info.name(),
                    t.latency
                );
                assert!(t.compute_uops <= 12);
            }
        }
    }
}
