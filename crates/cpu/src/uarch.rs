//! Microarchitectures and their machine-level configuration.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use difftune_isa::OpClass;

/// The four microarchitectures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Microarch {
    /// Intel Ivy Bridge (2012).
    IvyBridge,
    /// Intel Haswell (2013) — the paper's primary evaluation target.
    Haswell,
    /// Intel Skylake (2015).
    Skylake,
    /// AMD Zen 2 (2019).
    Zen2,
}

impl Microarch {
    /// All evaluated microarchitectures, in the order used by the paper's tables.
    pub const ALL: [Microarch; 4] = [
        Microarch::IvyBridge,
        Microarch::Haswell,
        Microarch::Skylake,
        Microarch::Zen2,
    ];

    /// The display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Microarch::IvyBridge => "Ivy Bridge",
            Microarch::Haswell => "Haswell",
            Microarch::Skylake => "Skylake",
            Microarch::Zen2 => "Zen 2",
        }
    }

    /// The short lowercase key used in cell ids, artifact file names, and
    /// serving requests (`ivybridge`, `haswell`, `skylake`, `zen2`). Every
    /// key parses back via [`FromStr`].
    pub fn key(self) -> &'static str {
        match self {
            Microarch::IvyBridge => "ivybridge",
            Microarch::Haswell => "haswell",
            Microarch::Skylake => "skylake",
            Microarch::Zen2 => "zen2",
        }
    }

    /// The machine configuration of this microarchitecture's reference model.
    pub fn config(self) -> UarchConfig {
        UarchConfig::for_uarch(self)
    }
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Microarch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace([' ', '-', '_'], "").as_str() {
            "ivybridge" | "ivb" => Ok(Microarch::IvyBridge),
            "haswell" | "hsw" => Ok(Microarch::Haswell),
            "skylake" | "skl" => Ok(Microarch::Skylake),
            "zen2" | "zen" => Ok(Microarch::Zen2),
            other => Err(format!("unknown microarchitecture `{other}`")),
        }
    }
}

/// A set of candidate execution ports, as a bitmask over the reference
/// machine's ports.
pub type PortSet = u16;

/// Machine-level configuration of a reference microarchitecture.
///
/// These are the *hidden true* machine characteristics; the "documentation"
/// used to build default simulator parameters is derived from them in
/// [`crate::default_params`], and DiffTune never sees them directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UarchConfig {
    /// Number of execution ports in the reference model.
    pub num_ports: usize,
    /// Micro-ops dispatched (renamed) per cycle.
    pub dispatch_width: u32,
    /// Instructions decoded per cycle by the frontend.
    pub decode_width: u32,
    /// Reorder buffer capacity in micro-ops.
    pub rob_size: u32,
    /// Load-to-use latency of the L1 data cache.
    pub load_latency: u32,
    /// Extra latency of store-to-load forwarding (added on top of the load
    /// latency when a load reads a recently stored location).
    pub store_forward_latency: u32,
    /// Whether register-to-register moves are eliminated at rename.
    pub move_elimination: bool,
    /// Whether zero idioms are executed without an execution port and break
    /// dependencies.
    pub zero_idiom_elimination: bool,
    /// Relative measurement noise applied by the measurement harness.
    pub measurement_noise: f64,
    /// Ports able to execute each class of operation (index by port bit).
    pub class_ports: Vec<(OpClass, PortSet)>,
    /// Ports able to compute load addresses / execute load micro-ops.
    pub load_ports: PortSet,
    /// Ports able to execute store micro-ops.
    pub store_ports: PortSet,
}

fn bits(ports: &[usize]) -> PortSet {
    ports.iter().fold(0, |acc, &p| acc | (1 << p))
}

impl UarchConfig {
    /// The configuration of a microarchitecture's reference model.
    pub fn for_uarch(uarch: Microarch) -> Self {
        use OpClass::*;
        match uarch {
            // Six-port core: p0/p1/p5 compute, p2/p3 loads, p4 stores.
            Microarch::IvyBridge => UarchConfig {
                num_ports: 6,
                dispatch_width: 4,
                decode_width: 4,
                rob_size: 168,
                load_latency: 4,
                store_forward_latency: 1,
                move_elimination: false,
                zero_idiom_elimination: true,
                measurement_noise: 0.02,
                class_ports: vec![
                    (IntAlu, bits(&[0, 1, 5])),
                    (IntMul, bits(&[1])),
                    (IntDiv, bits(&[0])),
                    (Shift, bits(&[0, 5])),
                    (Mov, bits(&[0, 1, 5])),
                    (Lea, bits(&[1, 5])),
                    (Stack, bits(&[0, 1, 5])),
                    (BitScan, bits(&[1])),
                    (VecAlu, bits(&[0, 1, 5])),
                    (VecMul, bits(&[0])),
                    (VecShuffle, bits(&[5])),
                    (VecMov, bits(&[0, 1, 5])),
                    (FpAdd, bits(&[1])),
                    (FpMul, bits(&[0])),
                    (FpDiv, bits(&[0])),
                    (FpSqrt, bits(&[0])),
                    (Fma, bits(&[0, 1])),
                    (Convert, bits(&[1])),
                    (Nop, 0),
                ],
                load_ports: bits(&[2, 3]),
                store_ports: bits(&[4]),
            },
            // Eight-port core: p0/p1/p5/p6 compute, p2/p3 loads, p4 store data, p7 store AGU.
            Microarch::Haswell => UarchConfig {
                num_ports: 8,
                dispatch_width: 4,
                decode_width: 4,
                rob_size: 192,
                load_latency: 4,
                store_forward_latency: 1,
                move_elimination: true,
                zero_idiom_elimination: true,
                measurement_noise: 0.02,
                class_ports: vec![
                    (IntAlu, bits(&[0, 1, 5, 6])),
                    (IntMul, bits(&[1])),
                    (IntDiv, bits(&[0])),
                    (Shift, bits(&[0, 6])),
                    (Mov, bits(&[0, 1, 5, 6])),
                    (Lea, bits(&[1, 5])),
                    (Stack, bits(&[0, 1, 5, 6])),
                    (BitScan, bits(&[1])),
                    (VecAlu, bits(&[0, 1, 5])),
                    (VecMul, bits(&[0])),
                    (VecShuffle, bits(&[5])),
                    (VecMov, bits(&[0, 1, 5])),
                    (FpAdd, bits(&[1])),
                    (FpMul, bits(&[0, 1])),
                    (FpDiv, bits(&[0])),
                    (FpSqrt, bits(&[0])),
                    (Fma, bits(&[0, 1])),
                    (Convert, bits(&[1])),
                    (Nop, 0),
                ],
                load_ports: bits(&[2, 3]),
                store_ports: bits(&[4]),
            },
            // Skylake: like Haswell with better vector port balance and a larger window.
            Microarch::Skylake => UarchConfig {
                num_ports: 8,
                dispatch_width: 4,
                decode_width: 5,
                rob_size: 224,
                load_latency: 4,
                store_forward_latency: 1,
                move_elimination: true,
                zero_idiom_elimination: true,
                measurement_noise: 0.02,
                class_ports: vec![
                    (IntAlu, bits(&[0, 1, 5, 6])),
                    (IntMul, bits(&[1])),
                    (IntDiv, bits(&[0])),
                    (Shift, bits(&[0, 6])),
                    (Mov, bits(&[0, 1, 5, 6])),
                    (Lea, bits(&[1, 5])),
                    (Stack, bits(&[0, 1, 5, 6])),
                    (BitScan, bits(&[1])),
                    (VecAlu, bits(&[0, 1, 5])),
                    (VecMul, bits(&[0, 1])),
                    (VecShuffle, bits(&[5])),
                    (VecMov, bits(&[0, 1, 5])),
                    (FpAdd, bits(&[0, 1])),
                    (FpMul, bits(&[0, 1])),
                    (FpDiv, bits(&[0])),
                    (FpSqrt, bits(&[0])),
                    (Fma, bits(&[0, 1])),
                    (Convert, bits(&[1])),
                    (Nop, 0),
                ],
                load_ports: bits(&[2, 3]),
                store_ports: bits(&[4]),
            },
            // Zen 2: four integer ALUs (0-3), three AGUs (4-6 with 6 dedicated to
            // stores), four FP pipes (7-9 plus sharing).
            Microarch::Zen2 => UarchConfig {
                num_ports: 10,
                dispatch_width: 5,
                decode_width: 4,
                rob_size: 224,
                load_latency: 4,
                store_forward_latency: 2,
                move_elimination: true,
                zero_idiom_elimination: true,
                measurement_noise: 0.025,
                class_ports: vec![
                    (IntAlu, bits(&[0, 1, 2, 3])),
                    (IntMul, bits(&[1])),
                    (IntDiv, bits(&[2])),
                    (Shift, bits(&[0, 1, 2, 3])),
                    (Mov, bits(&[0, 1, 2, 3])),
                    (Lea, bits(&[0, 1, 2, 3])),
                    (Stack, bits(&[0, 1, 2, 3])),
                    (BitScan, bits(&[1, 3])),
                    (VecAlu, bits(&[7, 8, 9])),
                    (VecMul, bits(&[7])),
                    (VecShuffle, bits(&[8, 9])),
                    (VecMov, bits(&[7, 8, 9])),
                    (FpAdd, bits(&[8, 9])),
                    (FpMul, bits(&[7, 8])),
                    (FpDiv, bits(&[7])),
                    (FpSqrt, bits(&[7])),
                    (Fma, bits(&[7, 8])),
                    (Convert, bits(&[8])),
                    (Nop, 0),
                ],
                load_ports: bits(&[4, 5]),
                store_ports: bits(&[6]),
            },
        }
    }

    /// Order-sensitive FNV-1a fingerprint of this configuration's serialized
    /// form, stable across processes and Rust versions.
    ///
    /// Scenario sweeps mix this into corpus seeds so that every distinct
    /// machine configuration yields a distinct measured corpus — different
    /// blocks, not just different timings (see
    /// `difftune_bhive::Dataset::build_distinct`). Any change to any field
    /// changes the fingerprint.
    pub fn stable_fingerprint(&self) -> u64 {
        let encoded = serde_json::to_string(self)
            .expect("a UarchConfig always serializes (plain data, no NaN)");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in encoded.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
        hash
    }

    /// Candidate ports for a class of operation.
    pub fn ports_for(&self, class: OpClass) -> PortSet {
        self.class_ports
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, ports)| *ports)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_uarchs_have_consistent_configs() {
        for uarch in Microarch::ALL {
            let config = uarch.config();
            assert!(config.num_ports <= 16);
            assert!(config.dispatch_width >= 4);
            assert!(config.rob_size >= 128);
            assert!(config.load_ports != 0 && config.store_ports != 0);
            for (class, ports) in &config.class_ports {
                if *class != OpClass::Nop {
                    assert!(*ports != 0, "{uarch:?} has no port for {class:?}");
                    assert!(
                        *ports < (1 << config.num_ports),
                        "{uarch:?} port set out of range for {class:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ports_for_unknown_class_defaults_to_port_zero() {
        let config = Microarch::Haswell.config();
        assert_ne!(config.ports_for(OpClass::IntAlu), 0);
    }

    #[test]
    fn keys_are_distinct_and_parse_back() {
        let mut seen = std::collections::HashSet::new();
        for uarch in Microarch::ALL {
            let key = uarch.key();
            assert!(seen.insert(key), "{uarch:?} key collides");
            assert_eq!(key.parse::<Microarch>().unwrap(), uarch);
            assert_eq!(key, key.to_ascii_lowercase(), "keys are lowercase");
        }
    }

    #[test]
    fn uarch_parsing_and_display() {
        assert_eq!("haswell".parse::<Microarch>().unwrap(), Microarch::Haswell);
        assert_eq!(
            "Ivy Bridge".parse::<Microarch>().unwrap(),
            Microarch::IvyBridge
        );
        assert_eq!("zen2".parse::<Microarch>().unwrap(), Microarch::Zen2);
        assert!("pentium".parse::<Microarch>().is_err());
        assert_eq!(Microarch::Skylake.to_string(), "Skylake");
    }

    #[test]
    fn fingerprints_are_stable_and_distinct_per_uarch() {
        let mut seen = std::collections::HashSet::new();
        for uarch in Microarch::ALL {
            let fingerprint = uarch.config().stable_fingerprint();
            assert_eq!(
                fingerprint,
                uarch.config().stable_fingerprint(),
                "{uarch:?} fingerprint must be deterministic"
            );
            assert!(
                seen.insert(fingerprint),
                "{uarch:?} fingerprint collides with another microarchitecture"
            );
        }
        // Any field change must change the fingerprint.
        let mut tweaked = Microarch::Haswell.config();
        tweaked.rob_size += 1;
        assert_ne!(
            tweaked.stable_fingerprint(),
            Microarch::Haswell.config().stable_fingerprint()
        );
    }

    #[test]
    fn haswell_differs_from_ivy_bridge() {
        let hsw = Microarch::Haswell.config();
        let ivb = Microarch::IvyBridge.config();
        assert!(hsw.num_ports > ivb.num_ports);
        assert!(hsw.move_elimination && !ivb.move_elimination);
        assert!(hsw.rob_size > ivb.rob_size);
    }
}
