//! An IACA-style analytical model.
//!
//! IACA is Intel's closed-source static analyzer; the paper uses it as the
//! strongest non-learned baseline (Table IV). This module provides an
//! analytical stand-in with the same flavour: it knows the true documented
//! characteristics of each instruction (it is written by the "vendor") and
//! predicts the block timing as the maximum of three bounds:
//!
//! * the **port pressure** bound — micro-ops are fractionally distributed over
//!   their candidate ports and the busiest port limits throughput;
//! * the **frontend** bound — decode and dispatch width limit how many
//!   instructions and micro-ops can enter the machine per cycle;
//! * the **latency** bound — the steady-state length of loop-carried register
//!   dependency chains (memory dependence chains are *not* modeled, one of the
//!   reasons IACA-style models mispredict read-modify-write chains).
//!
//! Like IACA, it models zero idioms but only targets the microarchitectures
//! its vendor ships (the Intel ones); [`AnalyticalModel::new`] returns `None`
//! for Zen 2, mirroring the `N/A` entries in Table IV.

use difftune_isa::{BasicBlock, RegFamily};

use crate::tables::InstTraits;
use crate::uarch::{Microarch, UarchConfig};

/// The analytical throughput/latency bound model.
#[derive(Debug, Clone)]
pub struct AnalyticalModel {
    uarch: Microarch,
    config: UarchConfig,
}

impl AnalyticalModel {
    /// Creates the analytical model for an Intel microarchitecture.
    ///
    /// Returns `None` for AMD targets, which the vendor tool does not support
    /// (matching the `N/A` entries in the paper's Table IV).
    pub fn new(uarch: Microarch) -> Option<Self> {
        match uarch {
            Microarch::Zen2 => None,
            _ => Some(AnalyticalModel {
                uarch,
                config: uarch.config(),
            }),
        }
    }

    /// The microarchitecture this model targets.
    pub fn uarch(&self) -> Microarch {
        self.uarch
    }

    /// Predicts the timing of a block in cycles per iteration.
    pub fn predict(&self, block: &BasicBlock) -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let registry = difftune_isa::OpcodeRegistry::global();
        let config = &self.config;

        let mut port_pressure = vec![0.0f64; config.num_ports];
        let mut total_uops = 0.0f64;
        let mut eliminated = 0usize;

        struct DepInst {
            reads: Vec<RegFamily>,
            writes: Vec<RegFamily>,
            latency: f64,
        }
        let mut dep_insts = Vec::with_capacity(block.len());

        for inst in block.iter() {
            let info = registry.info(inst.opcode());
            let traits = InstTraits::for_opcode(self.uarch, info);
            let zero_idiom = inst.is_zero_idiom() && config.zero_idiom_elimination;

            // Port pressure: compute micro-ops spread over candidate ports,
            // loads over load ports, stores over store ports.
            if !zero_idiom {
                spread(
                    &mut port_pressure,
                    config.ports_for(info.class()),
                    traits.compute_uops as f64 * (1.0 + traits.blocking_cycles as f64),
                );
                if inst.loads() {
                    spread(&mut port_pressure, config.load_ports, 1.0);
                }
                if inst.stores() {
                    spread(&mut port_pressure, config.store_ports, 1.0);
                }
            }
            let uops =
                (traits.compute_uops + u32::from(inst.loads()) + u32::from(inst.stores())).max(1);
            total_uops += uops as f64;
            if zero_idiom {
                eliminated += 1;
            }

            // Latency bound inputs: the dependency latency seen by consumers,
            // including the load-to-use latency for memory forms.
            let latency = if zero_idiom {
                0.0
            } else {
                traits.latency as f64
                    + if inst.loads() {
                        config.load_latency as f64
                    } else {
                        0.0
                    }
            };
            dep_insts.push(DepInst {
                reads: inst.reads(),
                writes: inst.writes(),
                latency,
            });
        }

        let port_bound = port_pressure.iter().cloned().fold(0.0, f64::max);
        let decode_bound = block.len() as f64 / config.decode_width as f64;
        let dispatch_bound = total_uops / config.dispatch_width as f64;
        let retire_bound = (block.len() - eliminated).max(1) as f64 / config.dispatch_width as f64;

        // Latency bound: steady-state cycles per iteration of loop-carried
        // register dependency chains, computed by relaxing the dataflow
        // schedule over a window of iterations with infinite resources.
        let mut reg_ready = [0.0f64; RegFamily::COUNT];
        let window = 16usize;
        let mut finish_half = 0.0f64;
        let mut finish_full = 0.0f64;
        for iteration in 0..window {
            let mut iteration_finish: f64 = 0.0;
            for inst in &dep_insts {
                let start = inst
                    .reads
                    .iter()
                    .map(|f| reg_ready[f.index()])
                    .fold(0.0, f64::max);
                let done = start + inst.latency;
                for family in &inst.writes {
                    reg_ready[family.index()] = done;
                }
                iteration_finish = iteration_finish.max(done);
            }
            if iteration == window / 2 - 1 {
                finish_half = iteration_finish;
            }
            if iteration == window - 1 {
                finish_full = iteration_finish;
            }
        }
        let latency_bound = (finish_full - finish_half) / (window as f64 / 2.0);

        port_bound
            .max(decode_bound)
            .max(dispatch_bound)
            .max(retire_bound)
            .max(latency_bound)
    }
}

/// Adds `amount` micro-op-cycles of pressure spread evenly over a port set.
fn spread(pressure: &mut [f64], ports: u16, amount: f64) {
    let count = ports.count_ones();
    if count == 0 || amount == 0.0 {
        return;
    }
    let share = amount / count as f64;
    for (port, slot) in pressure.iter_mut().enumerate() {
        if ports & (1 << port) != 0 {
            *slot += share;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{Machine, MeasurementConfig};

    fn block(text: &str) -> BasicBlock {
        text.parse().expect("test block parses")
    }

    #[test]
    fn unsupported_on_zen2() {
        assert!(AnalyticalModel::new(Microarch::Zen2).is_none());
        assert!(AnalyticalModel::new(Microarch::Haswell).is_some());
    }

    #[test]
    fn throughput_bound_blocks_are_predicted_well() {
        let model = AnalyticalModel::new(Microarch::Haswell).unwrap();
        let machine = Machine::with_measurement(
            Microarch::Haswell,
            MeasurementConfig {
                iterations: 100,
                apply_noise: false,
            },
        );
        let b = block("addq %rax, %rbx\naddq %rcx, %rdx\naddq %rsi, %rdi\naddq %r8, %r9");
        let predicted = model.predict(&b);
        let measured = machine.measure_exact(&b);
        let error = (predicted - measured).abs() / measured;
        assert!(error < 0.35, "predicted {predicted}, measured {measured}");
    }

    #[test]
    fn latency_bound_chains_are_predicted_well() {
        let model = AnalyticalModel::new(Microarch::Haswell).unwrap();
        let machine = Machine::with_measurement(
            Microarch::Haswell,
            MeasurementConfig {
                iterations: 100,
                apply_noise: false,
            },
        );
        let b = block("mulsd %xmm1, %xmm0\naddsd %xmm0, %xmm1");
        let predicted = model.predict(&b);
        let measured = machine.measure_exact(&b);
        let error = (predicted - measured).abs() / measured;
        assert!(error < 0.35, "predicted {predicted}, measured {measured}");
    }

    #[test]
    fn misses_memory_dependency_chains_like_iaca() {
        // The ADD32mr case study: the analytical model under-predicts because it
        // does not model store-to-load forwarding chains.
        let model = AnalyticalModel::new(Microarch::Haswell).unwrap();
        let machine = Machine::with_measurement(
            Microarch::Haswell,
            MeasurementConfig {
                iterations: 100,
                apply_noise: false,
            },
        );
        let b = block("addl %eax, 16(%rsp)");
        assert!(model.predict(&b) < machine.measure_exact(&b));
    }

    #[test]
    fn zero_idiom_is_not_latency_bound() {
        let model = AnalyticalModel::new(Microarch::Haswell).unwrap();
        let idiom = model.predict(&block("xorl %r13d, %r13d"));
        assert!(
            idiom <= 0.5,
            "zero idiom should be bounded by the frontend, got {idiom}"
        );
    }

    #[test]
    fn empty_block_is_zero() {
        let model = AnalyticalModel::new(Microarch::Skylake).unwrap();
        assert_eq!(model.predict(&BasicBlock::new()), 0.0);
    }
}
