//! Training loops for surrogate models.
//!
//! Both the surrogate (trained on simulated `(θ, x, ŷ)` triples, Equation 2)
//! and the Ithemal baseline (trained on measured `(x, y)` pairs) use the same
//! machinery: mini-batch Adam on the paper's mean-absolute-percentage-error
//! objective, with per-sample gradients computed on worker threads by the
//! deterministic [`Batch`] engine.
//!
//! # Determinism
//!
//! The batch engine reduces per-sample gradients in fixed sample order, so a
//! training run is **bit-identical for every thread count**: `threads: 1`
//! and `threads: 8` produce the same weights, losses, and reports
//! (`multi_threaded_training_is_bit_identical_to_single_threaded` below
//! asserts exact equality).

use difftune_tensor::optim::{Adam, Optimizer};
use difftune_tensor::{Batch, Grads, Graph, ProgramCache, Tensor, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::encode::TokenizedBlock;
use crate::SurrogateModel;

/// One training sample: a block, optional parameter features, and the target
/// timing the model should reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSample {
    /// The tokenized block.
    pub block: TokenizedBlock,
    /// Per-instruction parameter features (surrogate mode), one per instruction.
    pub per_inst_features: Option<Vec<Tensor>>,
    /// Global parameter features (surrogate mode).
    pub global_features: Option<Tensor>,
    /// The timing the model should predict.
    pub target: f64,
}

/// Which execution engine computes per-sample forward/backward passes.
///
/// Both engines share the same fused kernels and the same deterministic
/// reduction, so they produce **bit-identical** losses, gradients, and
/// trained weights; `Compiled` is simply faster (no per-sample tape
/// construction). The enforcing test lives in `tests/engine.rs` at the
/// workspace root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Rebuild a fresh autodiff tape for every sample. Always available,
    /// including for models that cannot key their graph structure.
    Taped,
    /// Record one compiled schedule per graph structure
    /// ([`SurrogateModel::program_key`]) and replay samples against it;
    /// unkeyable samples fall back to the tape inside the same batch.
    Compiled,
}

// The vendored serde derive cannot parse variant attributes, so the
// non-first default variant needs a manual impl.
#[allow(clippy::derivable_impls)]
impl Default for Engine {
    fn default() -> Self {
        Engine::Compiled
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate (the paper uses 0.001 for the surrogate).
    pub learning_rate: f32,
    /// Mini-batch size. The paper uses 256 on V100-scale datasets; the default
    /// here is smaller because the laptop-scale datasets in this repository
    /// yield too few optimizer steps at 256 to train the LSTM surrogate.
    pub batch_size: usize,
    /// Number of passes over the sample set.
    pub epochs: usize,
    /// Global-norm gradient clipping threshold (0 disables clipping).
    pub grad_clip: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Number of worker threads (0 = use all available cores).
    pub threads: usize,
    /// Execution engine for per-sample forward/backward passes. The choice
    /// never changes results (the engines are bit-identical), only speed.
    pub engine: Engine,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 1e-3,
            batch_size: 32,
            epochs: 1,
            grad_clip: 5.0,
            seed: 0,
            threads: 0,
            engine: Engine::default(),
        }
    }
}

/// A typed error from the training entry points.
///
/// Training used to `assert!` on malformed hyperparameters; every public
/// entry point now reports them as values so callers (in particular the
/// `difftune` session driver) can surface them without panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// `batch_size` was zero.
    InvalidBatchSize,
    /// The learning rate was zero, negative, or non-finite.
    InvalidLearningRate(f32),
    /// The gradient-clipping threshold was negative or NaN.
    InvalidGradClip(f32),
    /// The worker-thread count was absurdly large (0 means auto).
    InvalidThreads(usize),
}

/// Upper bound on explicit worker-thread counts (0 still means "all cores").
/// Spawning is per-chunk, so a count beyond any real machine is a config
/// mistake that would only waste memory on empty work ranges.
pub const MAX_THREADS: usize = 4096;

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidBatchSize => write!(f, "batch size must be positive"),
            TrainError::InvalidLearningRate(lr) => {
                write!(f, "learning rate must be finite and positive, got {lr}")
            }
            TrainError::InvalidGradClip(clip) => {
                write!(
                    f,
                    "gradient clip must be non-negative (0 disables), got {clip}"
                )
            }
            TrainError::InvalidThreads(threads) => {
                write!(
                    f,
                    "threads must be 0 (all cores) or at most {MAX_THREADS}, got {threads}"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl TrainConfig {
    /// Checks the hyperparameters, returning the first problem found.
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.batch_size == 0 {
            return Err(TrainError::InvalidBatchSize);
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(TrainError::InvalidLearningRate(self.learning_rate));
        }
        if self.grad_clip.is_nan() || self.grad_clip < 0.0 {
            return Err(TrainError::InvalidGradClip(self.grad_clip));
        }
        if self.threads > MAX_THREADS {
            return Err(TrainError::InvalidThreads(self.threads));
        }
        Ok(())
    }
}

/// A telemetry event streamed out of the training loop, so long runs report
/// progress instead of going dark until the final [`TrainReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// One full pass over the sample set finished.
    EpochCompleted {
        /// Zero-based index of the completed epoch.
        epoch: usize,
        /// Total number of epochs this run will perform.
        epochs: usize,
        /// Mean per-sample loss (MAPE) over the epoch.
        mean_loss: f64,
    },
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss (MAPE) per epoch.
    pub epoch_losses: Vec<f64>,
    /// Number of samples trained on.
    pub samples: usize,
}

impl TrainReport {
    /// The final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// Names the graph structure [`sample_loss`] builds for one sample: the
/// model's own key for the block, extended with which optional feature
/// inputs are present (they add input and concat nodes).
fn sample_program_key<M: SurrogateModel + ?Sized>(
    model: &M,
    sample: &TrainSample,
) -> Option<difftune_tensor::ProgramKey> {
    let mut key = model.program_key(&sample.block)?;
    key.push(u32::from(sample.per_inst_features.is_some()));
    key.push(u32::from(sample.global_features.is_some()));
    Some(key)
}

/// Builds the per-sample loss `|f̂(θ, x) − target| / target` on the graph.
fn sample_loss<M: SurrogateModel + ?Sized>(
    model: &M,
    graph: &mut Graph<'_>,
    sample: &TrainSample,
) -> Var {
    let feature_vars: Option<Vec<Var>> = sample
        .per_inst_features
        .as_ref()
        .map(|features| features.iter().map(|f| graph.input_ref(f)).collect());
    let global_var = sample.global_features.as_ref().map(|g| graph.input_ref(g));
    let prediction = model.forward(graph, &sample.block, feature_vars.as_deref(), global_var);
    let target = sample.target.max(1e-3) as f32;
    let target_var = graph.input(Tensor::scalar(target));
    let diff = graph.sub(prediction, target_var);
    let abs = graph.abs(diff);
    graph.scale(abs, 1.0 / target)
}

/// Trains a surrogate model in place and returns per-epoch statistics.
pub fn train<M: SurrogateModel>(
    model: &mut M,
    samples: &[TrainSample],
    config: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    let mut optimizer = Adam::new(config.learning_rate);
    train_with_optimizer(model, samples, config, &mut optimizer)
}

/// Trains with a caller-provided optimizer (useful for tests and schedules).
pub fn train_with_optimizer<M: SurrogateModel>(
    model: &mut M,
    samples: &[TrainSample],
    config: &TrainConfig,
    optimizer: &mut dyn Optimizer,
) -> Result<TrainReport, TrainError> {
    train_observed(model, samples, config, optimizer, &mut |_| {})
}

/// Trains while streaming a [`TrainEvent`] to `observe` after every epoch.
///
/// This is the primitive the other entry points wrap; the `difftune` session
/// driver uses it to forward per-epoch surrogate losses to its run observers.
pub fn train_observed<M: SurrogateModel>(
    model: &mut M,
    samples: &[TrainSample],
    config: &TrainConfig,
    optimizer: &mut dyn Optimizer,
    observe: &mut dyn FnMut(&TrainEvent),
) -> Result<TrainReport, TrainError> {
    config.validate()?;
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut engine = Batch::new(config.threads);
    let mut grads = Grads::new(model.params());
    // Compiled schedules depend only on graph *structure*, which optimizer
    // steps never change, so one cache serves the whole run.
    let mut cache = ProgramCache::new();

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            let batch_samples: Vec<&TrainSample> = batch.iter().map(|&i| &samples[i]).collect();
            let seed = 1.0 / batch_samples.len() as f32;

            grads.reset(model.params());
            let model_ref: &M = &*model;
            let batch_loss = match config.engine {
                Engine::Taped => engine.accumulate(
                    model_ref.params(),
                    &batch_samples,
                    |graph, sample| sample_loss(model_ref, graph, sample),
                    seed,
                    &mut grads,
                ),
                Engine::Compiled => engine.accumulate_compiled(
                    model_ref.params(),
                    &batch_samples,
                    &mut cache,
                    |sample| sample_program_key(model_ref, sample),
                    |graph, sample| sample_loss(model_ref, graph, sample),
                    seed,
                    &mut grads,
                ),
            };

            if config.grad_clip > 0.0 {
                let norm = grads.global_norm();
                if norm > config.grad_clip {
                    grads.scale(config.grad_clip / norm);
                }
            }
            optimizer.step(model.params_mut(), &grads);
            epoch_loss += batch_loss;
        }
        let mean_loss = epoch_loss / samples.len().max(1) as f64;
        epoch_losses.push(mean_loss);
        observe(&TrainEvent::EpochCompleted {
            epoch: epoch_losses.len() - 1,
            epochs: config.epochs,
            mean_loss,
        });
    }
    Ok(TrainReport {
        epoch_losses,
        samples: samples.len(),
    })
}

/// Evaluates a model's mean absolute percentage error over samples.
pub fn evaluate<M: SurrogateModel>(model: &M, samples: &[TrainSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for sample in samples {
        let mut graph = Graph::new(model.params());
        let feature_vars: Option<Vec<Var>> = sample
            .per_inst_features
            .as_ref()
            .map(|features| features.iter().map(|f| graph.input(f.clone())).collect());
        let global_var = sample
            .global_features
            .as_ref()
            .map(|g| graph.input(g.clone()));
        let prediction = model.forward(
            &mut graph,
            &sample.block,
            feature_vars.as_deref(),
            global_var,
        );
        let predicted = f64::from(graph.value(prediction)[0]);
        let target = sample.target.max(1e-3);
        total += (predicted - target).abs() / target;
    }
    total / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{block_param_features, global_features, Vocab};
    use crate::{FeatureMlpConfig, FeatureMlpModel, IthemalConfig, IthemalModel};
    use difftune_isa::BasicBlock;
    use difftune_sim::SimParams;

    fn make_samples(with_params: bool) -> Vec<TrainSample> {
        let vocab = Vocab::new();
        let texts = [
            ("addq %rax, %rbx", 1.0),
            ("addq %rax, %rbx\naddq %rbx, %rcx", 2.0),
            ("imulq %rbx, %rax\nimulq %rax, %rcx", 6.0),
            ("movq (%rdi), %rax\naddq %rax, %rbx", 2.0),
            ("divsd %xmm1, %xmm0", 14.0),
            ("pushq %rbx\ntestl %r8d, %r8d", 1.0),
            ("mulsd %xmm0, %xmm1\naddsd %xmm1, %xmm2", 8.0),
            ("xorl %eax, %eax", 0.3),
        ];
        let params = SimParams::uniform_default();
        texts
            .iter()
            .map(|(text, target)| {
                let block: BasicBlock = text.parse().unwrap();
                let block = vocab.tokenize_block(&block);
                TrainSample {
                    per_inst_features: with_params.then(|| block_param_features(&params, &block)),
                    global_features: with_params.then(|| global_features(&params)),
                    block,
                    target: *target,
                }
            })
            .collect()
    }

    #[test]
    fn training_the_mlp_surrogate_reduces_loss() {
        let mut model = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 32,
            ..FeatureMlpConfig::default()
        });
        let samples = make_samples(true);
        let before = evaluate(&model, &samples);
        let config = TrainConfig {
            learning_rate: 3e-3,
            batch_size: 4,
            epochs: 60,
            threads: 1,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &config).unwrap();
        let after = evaluate(&model, &samples);
        assert_eq!(report.epoch_losses.len(), 60);
        assert!(
            after < before,
            "training must reduce error: {before} -> {after}"
        );
        assert!(
            after < 0.5,
            "the MLP should fit 8 samples well, got {after}"
        );
    }

    #[test]
    fn training_the_lstm_surrogate_reduces_loss() {
        let tiny = IthemalConfig {
            embed_dim: 8,
            hidden_dim: 16,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed: 7,
        };
        let mut model = IthemalModel::new(tiny);
        let samples = make_samples(true);
        let before = evaluate(&model, &samples);
        let config = TrainConfig {
            learning_rate: 5e-3,
            batch_size: 4,
            epochs: 30,
            threads: 1,
            ..TrainConfig::default()
        };
        train(&mut model, &samples, &config).unwrap();
        let after = evaluate(&model, &samples);
        assert!(
            after < before,
            "training must reduce error: {before} -> {after}"
        );
    }

    #[test]
    fn baseline_mode_trains_without_parameter_features() {
        let mut model = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 16,
            parameter_inputs: false,
            seed: 2,
        });
        let samples = make_samples(false);
        let config = TrainConfig {
            learning_rate: 3e-3,
            batch_size: 4,
            epochs: 40,
            threads: 1,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &samples, &config).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn multi_threaded_training_is_bit_identical_to_single_threaded() {
        let samples = make_samples(true);
        let config_single = TrainConfig {
            learning_rate: 1e-3,
            batch_size: 8,
            epochs: 3,
            threads: 1,
            ..TrainConfig::default()
        };

        let make_model = |seed| {
            FeatureMlpModel::new(FeatureMlpConfig {
                hidden_dim: 16,
                seed,
                ..FeatureMlpConfig::default()
            })
        };
        let mut single = make_model(5);
        let single_report = train(&mut single, &samples, &config_single).unwrap();

        // Same data, same seed, same batches: the deterministic batch engine
        // reduces gradients in sample order, so every thread count must
        // reproduce the serial run bit for bit — weights and losses alike.
        for threads in [2, 4] {
            let config_multi = TrainConfig {
                threads,
                ..config_single.clone()
            };
            let mut multi = make_model(5);
            let multi_report = train(&mut multi, &samples, &config_multi).unwrap();
            assert_eq!(
                single.params(),
                multi.params(),
                "weights diverged with {threads} threads"
            );
            let single_bits: Vec<u64> = single_report
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect();
            let multi_bits: Vec<u64> = multi_report
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect();
            assert_eq!(
                single_bits, multi_bits,
                "epoch losses diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn compiled_engine_trains_bit_identically_to_taped() {
        let samples = make_samples(true);
        let config_for = |engine: Engine| TrainConfig {
            learning_rate: 1e-3,
            batch_size: 4,
            epochs: 3,
            threads: 2,
            engine,
            ..TrainConfig::default()
        };

        // MLP family.
        let mut taped_mlp = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 16,
            seed: 5,
            ..FeatureMlpConfig::default()
        });
        let mut compiled_mlp = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 16,
            seed: 5,
            ..FeatureMlpConfig::default()
        });
        let taped_report = train(&mut taped_mlp, &samples, &config_for(Engine::Taped)).unwrap();
        let compiled_report =
            train(&mut compiled_mlp, &samples, &config_for(Engine::Compiled)).unwrap();
        assert_eq!(taped_mlp.params(), compiled_mlp.params());
        let bits = |report: &TrainReport| -> Vec<u64> {
            report.epoch_losses.iter().map(|l| l.to_bits()).collect()
        };
        assert_eq!(bits(&taped_report), bits(&compiled_report));

        // LSTM family (variable-length blocks → several compiled programs).
        let tiny = IthemalConfig {
            embed_dim: 8,
            hidden_dim: 12,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed: 5,
        };
        let mut taped_lstm = IthemalModel::new(tiny);
        let mut compiled_lstm = IthemalModel::new(tiny);
        let taped_report = train(&mut taped_lstm, &samples, &config_for(Engine::Taped)).unwrap();
        let compiled_report =
            train(&mut compiled_lstm, &samples, &config_for(Engine::Compiled)).unwrap();
        assert_eq!(taped_lstm.params(), compiled_lstm.params());
        assert_eq!(bits(&taped_report), bits(&compiled_report));
    }

    #[test]
    fn evaluate_on_empty_sample_set_is_zero() {
        let model = FeatureMlpModel::new(FeatureMlpConfig::default());
        assert_eq!(evaluate(&model, &[]), 0.0);
    }
}
