//! Forward-only surrogate inference: the fast path behind `surrogate:`
//! backends.
//!
//! [`SurrogateForward`] owns everything one prediction needs — the trained
//! model, the tokenizer, the learned table it encodes as parameter features,
//! and the compiled-program cache — and produces one `f64` per basic block
//! with **no tape and no backward pass**. The graph a block builds is
//! recorded once per structure ([`SurrogateModel::program_key`]) and then
//! replayed forward-only ([`difftune_tensor::CompiledProgram::replay_forward`]); blocks whose
//! structure the model cannot key fall back to a taped forward pass, which
//! the engine guarantees is bit-identical.
//!
//! Both consumers of surrogate inference go through this type so they cannot
//! diverge: `difftune-serve` wraps it in its `Predictor` trait, and
//! `difftune-matrix` scores cells with it. The serving determinism
//! invariant — surrogate `/predict` bytes equal to an in-process forward
//! pass — holds because [`SurrogateForward::predict`] *is* the in-process
//! forward pass.

use difftune_isa::BasicBlock;
use difftune_sim::SimParams;
use difftune_tensor::{Graph, ProgramCache, ReplayBuffers, Tensor, Var};

use crate::artifact::SurrogateArtifact;
use crate::encode::{block_param_features, global_features, Vocab};
use crate::SurrogateModel;

/// A trained surrogate bound to a learned table, ready to predict.
///
/// Prediction is deterministic and history-free: the same block returns the
/// same bits regardless of what was predicted before (the internal program
/// cache only skips re-recording — replay output is bit-equal to the taped
/// pass by the engine's contract).
#[derive(Debug)]
pub struct SurrogateForward {
    model: Box<dyn SurrogateModel>,
    vocab: Vocab,
    table: SimParams,
    global: Tensor,
    cache: ProgramCache,
    buffers: ReplayBuffers,
}

impl SurrogateForward {
    /// Binds a trained model to the learned table it encodes as features.
    pub fn new(model: Box<dyn SurrogateModel>, table: SimParams) -> Self {
        let global = global_features(&table);
        SurrogateForward {
            model,
            vocab: Vocab::new(),
            table,
            global,
            cache: ProgramCache::new(),
            buffers: ReplayBuffers::default(),
        }
    }

    /// Loads a verified artifact's model and embedded table.
    ///
    /// # Errors
    ///
    /// Propagates [`SurrogateArtifact::load_model`] failures (weight/config
    /// incompatibility).
    pub fn from_artifact(artifact: &SurrogateArtifact) -> Result<Self, String> {
        Ok(SurrogateForward::new(
            artifact.load_model()?,
            artifact.table(),
        ))
    }

    /// The model answering predictions.
    pub fn model(&self) -> &dyn SurrogateModel {
        self.model.as_ref()
    }

    /// The learned table encoded as the model's parameter features.
    pub fn table(&self) -> &SimParams {
        &self.table
    }

    /// Number of compiled programs recorded so far.
    pub fn programs_recorded(&self) -> usize {
        self.cache.len()
    }

    /// Whether `block` takes the compiled fast path: it tokenizes and the
    /// model can program-key its structure. The serving policy layer uses
    /// this to decide tier 2 vs tier 3 without running a prediction (and
    /// without `&mut self` — no cache is touched).
    pub fn replayable(&self, block: &BasicBlock) -> bool {
        self.model
            .program_key(&self.vocab.tokenize_block(block))
            .is_some()
    }

    /// Predicts one block's timing with a forward-only pass.
    pub fn predict(&mut self, block: &BasicBlock) -> f64 {
        let tokenized = self.vocab.tokenize_block(block);
        let per_inst: Option<Vec<Tensor>> = self
            .model
            .uses_parameter_inputs()
            .then(|| block_param_features(&self.table, &tokenized));
        let global: Option<Tensor> = self
            .model
            .uses_parameter_inputs()
            .then(|| self.global.clone());
        let model = &self.model;
        let build = |graph: &mut Graph<'_>| -> Var {
            let per_inst_vars: Option<Vec<Var>> = per_inst
                .as_ref()
                .map(|f| f.iter().map(|t| graph.input(t.clone())).collect());
            let global_var = global.as_ref().map(|g| graph.input(g.clone()));
            model.forward(graph, &tokenized, per_inst_vars.as_deref(), global_var)
        };
        // The same key extension the training engine uses: optional feature
        // inputs add input/concat nodes to the graph.
        let key = self.model.program_key(&tokenized).map(|mut key| {
            key.push(u32::from(per_inst.is_some()));
            key.push(u32::from(global.is_some()));
            key
        });
        match key {
            Some(key) => {
                let program = self
                    .cache
                    .get_or_record(key, self.model.params(), |g| build(g));
                program.replay_forward(self.model.params(), &mut self.buffers, |g| build(g))
            }
            None => {
                let mut graph = Graph::new(self.model.params());
                let prediction = build(&mut graph);
                f64::from(graph.value(prediction)[0])
            }
        }
    }

    /// Predicts a timing for every block, in order.
    pub fn predict_batch(&mut self, blocks: &[BasicBlock]) -> Vec<f64> {
        blocks.iter().map(|block| self.predict(block)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureMlpConfig, FeatureMlpModel};
    use crate::model::{IthemalConfig, IthemalModel};

    fn blocks() -> Vec<BasicBlock> {
        [
            "addq %rax, %rbx",
            "imulq %rbx, %rcx\naddq %rcx, %rax",
            "movq (%rdi), %rax\naddq %rax, %rbx",
            "addq %rax, %rbx",
        ]
        .iter()
        .map(|text| text.parse().unwrap())
        .collect()
    }

    /// The reference: a fresh taped forward pass, nothing shared.
    fn taped_reference(model: &dyn SurrogateModel, table: &SimParams, block: &BasicBlock) -> f64 {
        let vocab = Vocab::new();
        let tokenized = vocab.tokenize_block(block);
        let features = model
            .uses_parameter_inputs()
            .then(|| block_param_features(table, &tokenized));
        let global = model
            .uses_parameter_inputs()
            .then(|| global_features(table));
        let mut graph = Graph::new(model.params());
        let feature_vars: Option<Vec<Var>> = features
            .as_ref()
            .map(|f| f.iter().map(|t| graph.input(t.clone())).collect());
        let global_var = global.as_ref().map(|g| graph.input(g.clone()));
        let prediction = model.forward(&mut graph, &tokenized, feature_vars.as_deref(), global_var);
        f64::from(graph.value(prediction)[0])
    }

    #[test]
    fn replayed_predictions_are_bit_equal_to_the_taped_pass() {
        let table = SimParams::uniform_default();
        let mlp = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 8,
            parameter_inputs: true,
            seed: 1,
        });
        let lstm = IthemalModel::new(IthemalConfig {
            embed_dim: 8,
            hidden_dim: 12,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed: 2,
        });
        let models: Vec<Box<dyn SurrogateModel>> = vec![Box::new(mlp), Box::new(lstm)];
        for model in models {
            let expected: Vec<u64> = blocks()
                .iter()
                .map(|b| taped_reference(model.as_ref(), &table, b).to_bits())
                .collect();
            let mut forward = SurrogateForward::new(model, table.clone());
            // Cold cache, then warm cache: both must match the reference.
            for _ in 0..2 {
                let got: Vec<u64> = forward
                    .predict_batch(&blocks())
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
                assert_eq!(got, expected);
            }
            assert!(forward.programs_recorded() > 0, "the fast path compiled");
        }
    }

    #[test]
    fn repeated_structures_share_one_compiled_program() {
        let mlp = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 8,
            parameter_inputs: true,
            seed: 4,
        });
        let mut forward = SurrogateForward::new(Box::new(mlp), SimParams::uniform_default());
        // The MLP keys on block length: two 1-instruction blocks, one
        // 2-instruction block → exactly two programs.
        forward.predict_batch(&blocks());
        assert_eq!(forward.programs_recorded(), 2);
    }
}
