//! The Ithemal-style LSTM surrogate (paper Figure 3).

use rand::rngs::StdRng;
use rand::SeedableRng;

use difftune_tensor::nn::{Embedding, Linear, StackedLstm};
use difftune_tensor::{Graph, Params, Tensor, Var};

use crate::encode::{TokenizedBlock, Vocab, GLOBAL_FEATURES, PER_INST_FEATURES};
use crate::SurrogateModel;

/// Hyperparameters of the [`IthemalModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IthemalConfig {
    /// Token embedding dimensionality.
    pub embed_dim: usize,
    /// Hidden dimensionality of both LSTMs.
    pub hidden_dim: usize,
    /// Number of stacked layers in the instruction-level LSTM.
    pub instr_layers: usize,
    /// Number of stacked layers in the block-level LSTM (the paper uses 4).
    pub block_layers: usize,
    /// Whether the model consumes simulator-parameter inputs (surrogate mode)
    /// or not (Ithemal baseline mode).
    pub parameter_inputs: bool,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl Default for IthemalConfig {
    /// A laptop-scale configuration: 32-dimensional embeddings, 64-dimensional
    /// hidden states, and 2-layer block LSTM (the paper uses 4 stacked layers
    /// of a larger model on a V100; the reduction is documented in
    /// EXPERIMENTS.md).
    fn default() -> Self {
        IthemalConfig {
            embed_dim: 32,
            hidden_dim: 64,
            instr_layers: 1,
            block_layers: 2,
            parameter_inputs: true,
            seed: 0,
        }
    }
}

impl IthemalConfig {
    /// The configuration used for the Ithemal baseline (no parameter inputs).
    pub fn baseline() -> Self {
        IthemalConfig {
            parameter_inputs: false,
            ..IthemalConfig::default()
        }
    }
}

/// The Ithemal-style surrogate: token embedding → instruction LSTM →
/// (‖ parameter features) → stacked block LSTM → linear timing head.
#[derive(Debug)]
pub struct IthemalModel {
    config: IthemalConfig,
    vocab: Vocab,
    params: Params,
    embedding: Embedding,
    instr_lstm: StackedLstm,
    block_lstm: StackedLstm,
    head: Linear,
}

impl IthemalModel {
    /// Creates a model with freshly initialized weights.
    pub fn new(config: IthemalConfig) -> Self {
        let vocab = Vocab::new();
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embedding = Embedding::new(
            &mut params,
            &mut rng,
            "embedding",
            vocab.len(),
            config.embed_dim,
        );
        let instr_lstm = StackedLstm::new(
            &mut params,
            &mut rng,
            "instr_lstm",
            config.embed_dim,
            config.hidden_dim,
            config.instr_layers,
        );
        let block_input_dim = if config.parameter_inputs {
            config.hidden_dim + PER_INST_FEATURES + GLOBAL_FEATURES
        } else {
            config.hidden_dim
        };
        let block_lstm = StackedLstm::new(
            &mut params,
            &mut rng,
            "block_lstm",
            block_input_dim,
            config.hidden_dim,
            config.block_layers,
        );
        let head = Linear::new(&mut params, &mut rng, "head", config.hidden_dim, 1);
        // Bias the timing head positive so the ReLU output head starts in its
        // active region (block timings are never negative).
        params.get_mut(head.param_ids()[1]).data_mut()[0] = 1.0;
        IthemalModel {
            config,
            vocab,
            params,
            embedding,
            instr_lstm,
            block_lstm,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &IthemalConfig {
        &self.config
    }

    /// The token vocabulary used by this model.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Convenience: predicts a timing with plain tensors (no gradients needed).
    pub fn predict(
        &self,
        block: &TokenizedBlock,
        per_inst_features: Option<&[Tensor]>,
        global: Option<&Tensor>,
    ) -> f64 {
        let mut graph = Graph::new(&self.params);
        let feature_vars: Option<Vec<Var>> = per_inst_features
            .map(|features| features.iter().map(|f| graph.input(f.clone())).collect());
        let global_var = global.map(|g| graph.input(g.clone()));
        let out = self.forward(&mut graph, block, feature_vars.as_deref(), global_var);
        f64::from(graph.value(out)[0])
    }
}

impl SurrogateModel for IthemalModel {
    fn forward(
        &self,
        graph: &mut Graph<'_>,
        block: &TokenizedBlock,
        per_inst_features: Option<&[Var]>,
        global_feature_var: Option<Var>,
    ) -> Var {
        assert!(
            !block.is_empty(),
            "cannot run the surrogate on an empty block"
        );
        if self.config.parameter_inputs {
            assert!(
                per_inst_features.map(|f| f.len()) == Some(block.len()),
                "surrogate mode requires one feature vector per instruction"
            );
            assert!(
                global_feature_var.is_some(),
                "surrogate mode requires global features"
            );
        }

        // Hoist every layer's parameters onto the graph once; per-token and
        // per-instruction work then only emits compute nodes.
        let embedding = self.embedding.bind(graph);
        let instr_lstm = self.instr_lstm.bind(graph);
        let block_lstm = self.block_lstm.bind(graph);

        let mut instruction_vectors = Vec::with_capacity(block.len());
        for (index, inst) in block.insts.iter().enumerate() {
            // Token embeddings → instruction-level LSTM summary.
            let embedded: Vec<Var> = inst
                .tokens
                .iter()
                .map(|&token| embedding.lookup(graph, token))
                .collect();
            let inst_vec = instr_lstm.run(graph, &embedded);
            // Concatenate the proposed parameters for this instruction plus the
            // global parameters (Figure 3).
            let combined = if self.config.parameter_inputs {
                let features = per_inst_features.expect("checked above")[index];
                let global = global_feature_var.expect("checked above");
                graph.concat(&[inst_vec, features, global])
            } else {
                inst_vec
            };
            instruction_vectors.push(combined);
        }

        let block_vec = block_lstm.run(graph, &instruction_vectors);
        let prediction = self.head.forward(graph, block_vec);
        // Timings are non-negative; a softplus-like clamp keeps optimization
        // well-behaved without flattening gradients the way abs() would at 0.
        graph.relu(prediction)
    }

    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn uses_parameter_inputs(&self) -> bool {
        self.config.parameter_inputs
    }

    fn program_key(&self, block: &TokenizedBlock) -> Option<difftune_tensor::ProgramKey> {
        // The op sequence depends on the per-instruction token counts (the
        // instruction LSTM unrolls per token) and the surrogate-mode flag;
        // token *values* only rebind embedding rows.
        let mut key = Vec::with_capacity(block.len() + 2);
        key.push(2);
        key.push(u32::from(self.config.parameter_inputs));
        for inst in &block.insts {
            key.push(u32::try_from(inst.tokens.len()).ok()?);
        }
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{block_param_features, global_features};
    use difftune_isa::BasicBlock;
    use difftune_sim::SimParams;
    use difftune_tensor::Grads;

    fn tiny_config() -> IthemalConfig {
        IthemalConfig {
            embed_dim: 8,
            hidden_dim: 12,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed: 3,
        }
    }

    fn tokenized(text: &str, vocab: &Vocab) -> TokenizedBlock {
        let block: BasicBlock = text.parse().unwrap();
        vocab.tokenize_block(&block)
    }

    #[test]
    fn forward_produces_a_nonnegative_scalar() {
        let model = IthemalModel::new(tiny_config());
        let block = tokenized("addq %rax, %rbx\nmulsd %xmm0, %xmm1", model.vocab());
        let params = SimParams::uniform_default();
        let features = block_param_features(&params, &block);
        let global = global_features(&params);
        let out = model.predict(&block, Some(&features), Some(&global));
        assert!(out >= 0.0);
        assert!(out.is_finite());
    }

    #[test]
    fn prediction_depends_on_parameter_inputs() {
        let model = IthemalModel::new(tiny_config());
        let block = tokenized("addq %rax, %rbx", model.vocab());
        let base = SimParams::uniform_default();
        let mut changed = base.clone();
        for entry in &mut changed.per_inst {
            entry.write_latency = 9;
            entry.num_micro_ops = 8;
        }
        changed.dispatch_width = 10;
        let a = model.predict(
            &block,
            Some(&block_param_features(&base, &block)),
            Some(&global_features(&base)),
        );
        let b = model.predict(
            &block,
            Some(&block_param_features(&changed, &block)),
            Some(&global_features(&changed)),
        );
        assert!(
            (a - b).abs() > 1e-6,
            "parameter inputs must influence the prediction"
        );
    }

    #[test]
    fn prediction_depends_on_the_block() {
        let model = IthemalModel::new(tiny_config());
        let params = SimParams::uniform_default();
        let global = global_features(&params);
        let a_block = tokenized("addq %rax, %rbx", model.vocab());
        let b_block = tokenized("divsd %xmm0, %xmm1", model.vocab());
        let a = model.predict(
            &a_block,
            Some(&block_param_features(&params, &a_block)),
            Some(&global),
        );
        let b = model.predict(
            &b_block,
            Some(&block_param_features(&params, &b_block)),
            Some(&global),
        );
        assert!((a - b).abs() > 1e-6);
    }

    #[test]
    fn baseline_mode_needs_no_parameter_features() {
        let model = IthemalModel::new(IthemalConfig {
            parameter_inputs: false,
            ..tiny_config()
        });
        let block = tokenized("addq %rax, %rbx\naddq %rbx, %rcx", model.vocab());
        let out = model.predict(&block, None, None);
        assert!(out.is_finite());
        assert!(!model.uses_parameter_inputs());
    }

    #[test]
    fn gradients_flow_to_model_weights_and_parameter_inputs() {
        let model = IthemalModel::new(tiny_config());
        let block = tokenized("addq %rax, %rbx", model.vocab());
        let sim_params = SimParams::uniform_default();
        let features = block_param_features(&sim_params, &block);
        let global = global_features(&sim_params);

        // Register the parameter features as trainable leaves in a scratch
        // parameter store appended to the model's store — emulating how the
        // core crate optimizes the table through the frozen surrogate.
        let mut store = model.params().clone();
        let feature_id = store.add("theta.features", features[0].clone());
        let global_id = store.add("theta.global", global.clone());

        let mut graph = Graph::new(&store);
        let feature_var = graph.param(feature_id);
        let global_var = graph.param(global_id);
        let out = model.forward(&mut graph, &block, Some(&[feature_var]), Some(global_var));
        let mut grads = Grads::new(&store);
        graph.backward(out, &mut grads);

        assert!(
            grads.get(feature_id).is_some(),
            "gradient must reach the parameter inputs"
        );
        let embedding_grad = grads.get(model.params().by_name("embedding.table").unwrap());
        assert!(
            embedding_grad.is_some(),
            "gradient must reach the embedding table"
        );
        let nonzero = grads
            .get(feature_id)
            .unwrap()
            .data()
            .iter()
            .any(|v| *v != 0.0);
        assert!(
            nonzero,
            "parameter-input gradients should not be identically zero"
        );
    }

    #[test]
    #[should_panic]
    fn surrogate_mode_requires_features() {
        let model = IthemalModel::new(tiny_config());
        let block = tokenized("addq %rax, %rbx", model.vocab());
        let _ = model.predict(&block, None, None);
    }
}
