//! A fast feature-based MLP surrogate.
//!
//! The paper's surrogate is the LSTM model in [`crate::IthemalModel`]. This
//! module provides a much cheaper alternative with the same interface: the
//! block is summarized by hand-engineered features (length, memory traffic,
//! instruction-class mix) plus the *mean* of the per-instruction parameter
//! features and the global parameter features, and a small MLP maps the summary
//! to a timing. It is used for the surrogate-family ablation and anywhere
//! wall-clock time matters more than fidelity.

use rand::rngs::StdRng;
use rand::SeedableRng;

use difftune_isa::{OpClass, OpcodeRegistry};
use difftune_tensor::nn::Linear;
use difftune_tensor::{Graph, Params, Tensor, Var};

use crate::encode::{TokenizedBlock, GLOBAL_FEATURES, PER_INST_FEATURES};
use crate::SurrogateModel;

/// All operation classes, indexed for the static feature vector.
const CLASSES: [OpClass; 19] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::Shift,
    OpClass::Mov,
    OpClass::Lea,
    OpClass::Stack,
    OpClass::BitScan,
    OpClass::VecAlu,
    OpClass::VecMul,
    OpClass::VecShuffle,
    OpClass::VecMov,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::FpSqrt,
    OpClass::Fma,
    OpClass::Convert,
    OpClass::Nop,
];

/// Number of static (parameter-independent) block features.
const STATIC_FEATURES: usize = 4 + CLASSES.len();

/// Hyperparameters of the [`FeatureMlpModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FeatureMlpConfig {
    /// Width of the two hidden layers.
    pub hidden_dim: usize,
    /// Whether parameter features are consumed (surrogate mode).
    pub parameter_inputs: bool,
    /// Weight initialization seed.
    pub seed: u64,
}

impl Default for FeatureMlpConfig {
    fn default() -> Self {
        FeatureMlpConfig {
            hidden_dim: 64,
            parameter_inputs: true,
            seed: 0,
        }
    }
}

/// The feature-MLP surrogate.
#[derive(Debug)]
pub struct FeatureMlpModel {
    config: FeatureMlpConfig,
    params: Params,
    layer1: Linear,
    layer2: Linear,
    head: Linear,
}

impl FeatureMlpModel {
    /// Creates a model with freshly initialized weights.
    pub fn new(config: FeatureMlpConfig) -> Self {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input_dim = if config.parameter_inputs {
            STATIC_FEATURES + PER_INST_FEATURES + GLOBAL_FEATURES
        } else {
            STATIC_FEATURES
        };
        let layer1 = Linear::new(
            &mut params,
            &mut rng,
            "mlp.layer1",
            input_dim,
            config.hidden_dim,
        );
        let layer2 = Linear::new(
            &mut params,
            &mut rng,
            "mlp.layer2",
            config.hidden_dim,
            config.hidden_dim,
        );
        let head = Linear::new(&mut params, &mut rng, "mlp.head", config.hidden_dim, 1);
        params.get_mut(head.param_ids()[1]).data_mut()[0] = 1.0;
        FeatureMlpModel {
            config,
            params,
            layer1,
            layer2,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &FeatureMlpConfig {
        &self.config
    }

    /// The static (parameter-independent) feature vector of a block.
    pub fn static_features(block: &TokenizedBlock) -> Tensor {
        let registry = OpcodeRegistry::global();
        let len = block.len().max(1) as f32;
        let mut loads = 0.0f32;
        let mut stores = 0.0f32;
        let mut vector = 0.0f32;
        let mut class_counts = [0.0f32; CLASSES.len()];
        for inst in &block.insts {
            let info = registry.info(inst.opcode);
            if info.loads() {
                loads += 1.0;
            }
            if info.stores() {
                stores += 1.0;
            }
            if info.class().is_vector() {
                vector += 1.0;
            }
            if let Some(slot) = CLASSES.iter().position(|&c| c == info.class()) {
                class_counts[slot] += 1.0;
            }
        }
        let mut data = vec![len / 16.0, loads / len, stores / len, vector / len];
        data.extend(class_counts.iter().map(|c| c / len));
        Tensor::vector(data)
    }

    /// Convenience prediction from plain tensors.
    pub fn predict(
        &self,
        block: &TokenizedBlock,
        per_inst_features: Option<&[Tensor]>,
        global: Option<&Tensor>,
    ) -> f64 {
        let mut graph = Graph::new(&self.params);
        let feature_vars: Option<Vec<Var>> = per_inst_features
            .map(|features| features.iter().map(|f| graph.input(f.clone())).collect());
        let global_var = global.map(|g| graph.input(g.clone()));
        let out = self.forward(&mut graph, block, feature_vars.as_deref(), global_var);
        f64::from(graph.value(out)[0])
    }
}

impl SurrogateModel for FeatureMlpModel {
    fn forward(
        &self,
        graph: &mut Graph<'_>,
        block: &TokenizedBlock,
        per_inst_features: Option<&[Var]>,
        global_feature_var: Option<Var>,
    ) -> Var {
        assert!(
            !block.is_empty(),
            "cannot run the surrogate on an empty block"
        );
        let static_features = graph.input(Self::static_features(block));
        let input = if self.config.parameter_inputs {
            let features =
                per_inst_features.expect("surrogate mode requires per-instruction features");
            assert_eq!(
                features.len(),
                block.len(),
                "one feature vector per instruction"
            );
            let global = global_feature_var.expect("surrogate mode requires global features");
            // Mean-pool the per-instruction parameter features.
            let mut pooled = features[0];
            for &feature in &features[1..] {
                pooled = graph.add(pooled, feature);
            }
            let pooled = graph.scale(pooled, 1.0 / features.len() as f32);
            graph.concat(&[static_features, pooled, global])
        } else {
            static_features
        };
        let h1 = self.layer1.forward(graph, input);
        let h1 = graph.relu(h1);
        let h2 = self.layer2.forward(graph, h1);
        let h2 = graph.relu(h2);
        let out = self.head.forward(graph, h2);
        graph.relu(out)
    }

    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn uses_parameter_inputs(&self) -> bool {
        self.config.parameter_inputs
    }

    fn program_key(&self, block: &TokenizedBlock) -> Option<difftune_tensor::ProgramKey> {
        // The op sequence only depends on the number of pooled feature
        // vectors (one per instruction) and the surrogate-mode flag.
        Some(vec![
            1,
            u32::from(self.config.parameter_inputs),
            u32::try_from(block.len()).ok()?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{block_param_features, global_features, Vocab};
    use difftune_isa::BasicBlock;
    use difftune_sim::SimParams;

    fn tokenized(text: &str) -> TokenizedBlock {
        let block: BasicBlock = text.parse().unwrap();
        Vocab::new().tokenize_block(&block)
    }

    #[test]
    fn static_features_reflect_block_structure() {
        let block = tokenized("movq (%rdi), %rax\naddq %rax, %rbx\nmovq %rbx, 8(%rdi)");
        let features = FeatureMlpModel::static_features(&block);
        assert_eq!(features.len(), STATIC_FEATURES);
        assert!(
            (features.data()[1] - 1.0 / 3.0).abs() < 1e-6,
            "one load out of three instructions"
        );
        assert!(
            (features.data()[2] - 1.0 / 3.0).abs() < 1e-6,
            "one store out of three instructions"
        );
    }

    #[test]
    fn forward_is_finite_and_sensitive_to_parameters() {
        let model = FeatureMlpModel::new(FeatureMlpConfig {
            hidden_dim: 16,
            ..FeatureMlpConfig::default()
        });
        let block = tokenized("addq %rax, %rbx\nimulq %rbx, %rcx");
        let base = SimParams::uniform_default();
        let mut slow = base.clone();
        for entry in &mut slow.per_inst {
            entry.write_latency = 10;
        }
        let a = model.predict(
            &block,
            Some(&block_param_features(&base, &block)),
            Some(&global_features(&base)),
        );
        let b = model.predict(
            &block,
            Some(&block_param_features(&slow, &block)),
            Some(&global_features(&slow)),
        );
        assert!(a.is_finite() && b.is_finite());
        assert!((a - b).abs() > 1e-9);
    }

    #[test]
    fn baseline_mode_ignores_parameters() {
        let model = FeatureMlpModel::new(FeatureMlpConfig {
            parameter_inputs: false,
            hidden_dim: 8,
            seed: 1,
        });
        let block = tokenized("addq %rax, %rbx");
        let out = model.predict(&block, None, None);
        assert!(out.is_finite());
        assert!(!model.uses_parameter_inputs());
    }
}
