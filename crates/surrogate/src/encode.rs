//! Canonicalization of basic blocks into token sequences and of parameter
//! tables into normalized feature vectors.

use difftune_isa::{BasicBlock, Inst, OpcodeId, OpcodeRegistry, Operand, RegFamily};
use difftune_sim::{PerInstParams, SimParams, NUM_PORTS, NUM_READ_ADVANCE};
use difftune_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Number of per-instruction parameter features fed to the surrogate
/// (`NumMicroOps`, `WriteLatency`, `ReadAdvanceCycles[3]`, `PortMap[10]`).
pub const PER_INST_FEATURES: usize = 2 + NUM_READ_ADVANCE + NUM_PORTS;

/// Number of global parameter features (`DispatchWidth`, `ReorderBufferSize`).
pub const GLOBAL_FEATURES: usize = 2;

/// Normalization divisors applied to per-instruction parameters before they
/// enter the surrogate (kept modest so that the sampled training ranges map
/// roughly to `[0, 1]`).
pub const PER_INST_SCALES: [f32; PER_INST_FEATURES] = [
    10.0, 10.0, 10.0, 10.0, 10.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0,
];

/// Normalization divisors for the global parameters.
pub const GLOBAL_SCALES: [f32; GLOBAL_FEATURES] = [10.0, 250.0];

/// The token vocabulary: one token per opcode, one per register family, plus
/// operand-kind and structure markers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    num_opcodes: usize,
}

impl Vocab {
    /// Builds the vocabulary over the global opcode registry.
    pub fn new() -> Self {
        Vocab {
            num_opcodes: OpcodeRegistry::global().len(),
        }
    }

    /// Total number of tokens.
    pub fn len(&self) -> usize {
        self.num_opcodes + RegFamily::COUNT + 5
    }

    /// True if the vocabulary is empty (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The token for an opcode.
    pub fn opcode_token(&self, id: OpcodeId) -> usize {
        id.index()
    }

    /// The token for a register family.
    pub fn register_token(&self, family: RegFamily) -> usize {
        self.num_opcodes + family.index()
    }

    /// The token marking a memory operand.
    pub fn mem_token(&self) -> usize {
        self.num_opcodes + RegFamily::COUNT
    }

    /// The token marking an immediate operand.
    pub fn imm_token(&self) -> usize {
        self.num_opcodes + RegFamily::COUNT + 1
    }

    /// The `<S>` marker (start of source operands).
    pub fn sources_token(&self) -> usize {
        self.num_opcodes + RegFamily::COUNT + 2
    }

    /// The `<D>` marker (start of destination operands).
    pub fn dests_token(&self) -> usize {
        self.num_opcodes + RegFamily::COUNT + 3
    }

    /// The `<E>` marker (end of instruction).
    pub fn end_token(&self) -> usize {
        self.num_opcodes + RegFamily::COUNT + 4
    }

    /// Tokenizes one instruction in Ithemal's canonical order:
    /// `opcode <S> sources... <D> destinations... <E>`.
    pub fn tokenize_inst(&self, inst: &Inst) -> TokenizedInst {
        let mut tokens = Vec::with_capacity(8);
        tokens.push(self.opcode_token(inst.opcode()));
        tokens.push(self.sources_token());
        for operand in inst.operands().iter().skip(1) {
            self.push_operand(&mut tokens, operand);
        }
        // Implicit sources that matter for timing (e.g. the stack pointer).
        for family in inst.info().implicit_reads() {
            tokens.push(self.register_token(*family));
        }
        tokens.push(self.dests_token());
        if let Some(first) = inst.operands().first() {
            self.push_operand(&mut tokens, first);
        }
        tokens.push(self.end_token());
        TokenizedInst {
            opcode: inst.opcode(),
            tokens,
        }
    }

    fn push_operand(&self, tokens: &mut Vec<usize>, operand: &Operand) {
        match operand {
            Operand::Reg(reg) => tokens.push(self.register_token(reg.family())),
            Operand::Imm(_) => tokens.push(self.imm_token()),
            Operand::Mem(mem) => {
                tokens.push(self.mem_token());
                for family in mem.address_regs() {
                    tokens.push(self.register_token(family));
                }
            }
        }
    }

    /// Tokenizes a whole block.
    pub fn tokenize_block(&self, block: &BasicBlock) -> TokenizedBlock {
        TokenizedBlock {
            insts: block.iter().map(|inst| self.tokenize_inst(inst)).collect(),
        }
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Vocab::new()
    }
}

/// A tokenized instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizedInst {
    /// The instruction's opcode (used to select its parameter-table entry).
    pub opcode: OpcodeId,
    /// The canonical token sequence.
    pub tokens: Vec<usize>,
}

/// A tokenized basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizedBlock {
    /// Tokenized instructions in program order.
    pub insts: Vec<TokenizedInst>,
}

impl TokenizedBlock {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Total number of tokens across all instructions.
    pub fn num_tokens(&self) -> usize {
        self.insts.iter().map(|i| i.tokens.len()).sum()
    }
}

/// The normalized per-instruction parameter feature vector for one opcode's
/// table entry (the representation concatenated to the instruction embedding
/// in Figure 3).
pub fn param_features(entry: &PerInstParams) -> Tensor {
    let mut raw = Vec::with_capacity(PER_INST_FEATURES);
    // Lower-bounded parameters have their bound subtracted before being fed to
    // the surrogate (Section IV): NumMicroOps has bound 1, the rest bound 0.
    raw.push(entry.num_micro_ops.saturating_sub(1) as f32);
    raw.push(entry.write_latency as f32);
    raw.extend(entry.read_advance_cycles.iter().map(|&v| v as f32));
    raw.extend(entry.port_map.iter().map(|&v| v as f32));
    let data = raw
        .iter()
        .zip(PER_INST_SCALES.iter())
        .map(|(v, s)| v / s)
        .collect();
    Tensor::vector(data)
}

/// The normalized global parameter feature vector (`DispatchWidth`,
/// `ReorderBufferSize`).
pub fn global_features(params: &SimParams) -> Tensor {
    let raw = [
        params.dispatch_width.saturating_sub(1) as f32,
        params.reorder_buffer_size.saturating_sub(1) as f32,
    ];
    Tensor::vector(
        raw.iter()
            .zip(GLOBAL_SCALES.iter())
            .map(|(v, s)| v / s)
            .collect(),
    )
}

/// Builds the full list of per-instruction feature tensors for a block under a
/// parameter table.
pub fn block_param_features(params: &SimParams, block: &TokenizedBlock) -> Vec<Tensor> {
    block
        .insts
        .iter()
        .map(|inst| param_features(params.inst(inst.opcode)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::BasicBlock;

    #[test]
    fn vocabulary_covers_opcodes_registers_and_markers() {
        let vocab = Vocab::new();
        let registry = OpcodeRegistry::global();
        assert_eq!(vocab.len(), registry.len() + RegFamily::COUNT + 5);
        assert!(vocab.end_token() < vocab.len());
        assert!(!vocab.is_empty());
    }

    #[test]
    fn tokenization_follows_ithemal_canonical_order() {
        let vocab = Vocab::new();
        let block: BasicBlock = "addl %eax, 16(%rsp)".parse().unwrap();
        let tokenized = vocab.tokenize_block(&block);
        assert_eq!(tokenized.len(), 1);
        let inst = &tokenized.insts[0];
        let registry = OpcodeRegistry::global();
        assert_eq!(inst.opcode, registry.by_name("ADD32mr").unwrap());
        // opcode, <S>, %eax, <D>, MEM, %rsp, <E>
        assert_eq!(inst.tokens[0], vocab.opcode_token(inst.opcode));
        assert_eq!(inst.tokens[1], vocab.sources_token());
        assert!(inst.tokens.contains(&vocab.mem_token()));
        assert!(inst.tokens.contains(&vocab.register_token(RegFamily::Rsp)));
        assert_eq!(*inst.tokens.last().unwrap(), vocab.end_token());
        assert!(inst.tokens.iter().all(|&t| t < vocab.len()));
    }

    #[test]
    fn different_blocks_tokenize_differently() {
        let vocab = Vocab::new();
        let a: BasicBlock = "addq %rax, %rbx".parse().unwrap();
        let b: BasicBlock = "addq %rcx, %rbx".parse().unwrap();
        assert_ne!(vocab.tokenize_block(&a), vocab.tokenize_block(&b));
    }

    #[test]
    fn implicit_stack_pointer_appears_for_push() {
        let vocab = Vocab::new();
        let block: BasicBlock = "pushq %rbx".parse().unwrap();
        let tokenized = vocab.tokenize_block(&block);
        assert!(tokenized.insts[0]
            .tokens
            .contains(&vocab.register_token(RegFamily::Rsp)));
    }

    #[test]
    fn param_features_are_normalized_and_bounded() {
        let mut entry = PerInstParams::unit();
        entry.write_latency = 5;
        entry.num_micro_ops = 3;
        entry.port_map[9] = 2;
        let features = param_features(&entry);
        assert_eq!(features.len(), PER_INST_FEATURES);
        assert!(
            (features.data()[0] - 0.2).abs() < 1e-6,
            "num_micro_ops - 1 scaled by 10"
        );
        assert!(
            (features.data()[1] - 0.5).abs() < 1e-6,
            "write latency scaled by 10"
        );
        assert!(features.data().iter().all(|v| (0.0..=3.0).contains(v)));
    }

    #[test]
    fn global_features_shape_and_normalization() {
        let mut params = SimParams::uniform_default();
        params.dispatch_width = 6;
        params.reorder_buffer_size = 251;
        let features = global_features(&params);
        assert_eq!(features.len(), GLOBAL_FEATURES);
        assert!((features.data()[0] - 0.5).abs() < 1e-6);
        assert!((features.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn block_param_features_follow_instruction_order() {
        let vocab = Vocab::new();
        let block: BasicBlock = "addq %rax, %rbx\nmulsd %xmm0, %xmm1".parse().unwrap();
        let tokenized = vocab.tokenize_block(&block);
        let mut params = SimParams::uniform_default();
        params.inst_mut(tokenized.insts[1].opcode).write_latency = 7;
        let features = block_param_features(&params, &tokenized);
        assert_eq!(features.len(), 2);
        assert!((features[1].data()[1] - 0.7).abs() < 1e-6);
        assert!((features[0].data()[1] - 0.1).abs() < 1e-6);
    }
}
