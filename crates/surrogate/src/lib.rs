//! # difftune-surrogate
//!
//! Learned differentiable surrogates of basic-block CPU simulators.
//!
//! The paper's surrogate is a modified Ithemal model (Figure 3): a token
//! embedding feeds a per-instruction LSTM; the resulting instruction vectors
//! are concatenated with the proposed per-instruction and global simulator
//! parameters and fed to a (stacked) block-level LSTM; a final linear layer
//! produces the timing prediction. Because the surrogate is differentiable in
//! both its weights and the parameter inputs, it can be used both to mimic the
//! simulator (Equation 2) and, with its weights frozen, to optimize the
//! simulator's parameters by gradient descent (Equation 3).
//!
//! This crate provides:
//!
//! * [`Vocab`] / [`TokenizedBlock`] — the Ithemal-style canonicalization of
//!   basic blocks into token sequences;
//! * [`param_features`] / [`global_features`] — the normalized encoding of a
//!   simulator parameter table as surrogate inputs (shared between surrogate
//!   training and parameter-table optimization so the two stay consistent);
//! * [`IthemalModel`] — the LSTM surrogate (with or without parameter inputs;
//!   without parameters it is the Ithemal baseline from Table IV);
//! * [`FeatureMlpModel`] — a fast feature-based surrogate used for ablations
//!   and as a cheaper drop-in when wall-clock time matters;
//! * [`train`] — mini-batch training loops (Adam, MAPE loss, multi-threaded
//!   gradient computation) shared by surrogate training and the Ithemal
//!   baseline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
mod encode;
mod feature;
pub mod infer;
mod model;
pub mod train;

pub use artifact::{surrogate_file_name, ModelConfig, SurrogateArtifact, SURROGATE_SCHEMA};
pub use encode::{
    block_param_features, global_features, param_features, TokenizedBlock, TokenizedInst, Vocab,
    GLOBAL_FEATURES, GLOBAL_SCALES, PER_INST_FEATURES, PER_INST_SCALES,
};
pub use feature::{FeatureMlpConfig, FeatureMlpModel};
pub use infer::SurrogateForward;
pub use model::{IthemalConfig, IthemalModel};

use difftune_tensor::{Graph, ProgramKey, Var};

/// A differentiable surrogate model: predicts a block timing from a tokenized
/// block and (optionally) parameter features already present in the graph.
///
/// Both the LSTM surrogate and the feature MLP implement this trait, so the
/// DiffTune optimization loop in the `difftune` crate is generic over the
/// surrogate family.
pub trait SurrogateModel: std::fmt::Debug + Send + Sync {
    /// Builds the forward computation for one block.
    ///
    /// `per_inst_features` must contain one feature vector per instruction (in
    /// program order) of dimension [`PER_INST_FEATURES`], and
    /// `global_feature_var` a vector of dimension [`GLOBAL_FEATURES`]. Pass
    /// `None` to run in baseline (Ithemal) mode without parameter inputs.
    fn forward(
        &self,
        graph: &mut Graph<'_>,
        block: &TokenizedBlock,
        per_inst_features: Option<&[Var]>,
        global_feature_var: Option<Var>,
    ) -> Var;

    /// The trainable parameter store backing this model.
    fn params(&self) -> &difftune_tensor::Params;

    /// Mutable access to the trainable parameter store.
    fn params_mut(&mut self) -> &mut difftune_tensor::Params;

    /// Whether the model consumes parameter features (surrogate mode) or not
    /// (baseline mode).
    fn uses_parameter_inputs(&self) -> bool;

    /// Names the graph structure [`forward`](SurrogateModel::forward) builds
    /// for `block`, for the compiled execution engine: two blocks map to the
    /// same key **iff** they build identical op sequences (only input data,
    /// embedding rows, and scalar constants may differ). Return `None` for
    /// blocks whose structure the model cannot key — they fall back to the
    /// tape.
    fn program_key(&self, block: &TokenizedBlock) -> Option<ProgramKey> {
        let _ = block;
        None
    }
}

impl<T: SurrogateModel + ?Sized> SurrogateModel for Box<T> {
    fn forward(
        &self,
        graph: &mut Graph<'_>,
        block: &TokenizedBlock,
        per_inst_features: Option<&[Var]>,
        global_feature_var: Option<Var>,
    ) -> Var {
        (**self).forward(graph, block, per_inst_features, global_feature_var)
    }

    fn params(&self) -> &difftune_tensor::Params {
        (**self).params()
    }

    fn params_mut(&mut self) -> &mut difftune_tensor::Params {
        (**self).params_mut()
    }

    fn uses_parameter_inputs(&self) -> bool {
        (**self).uses_parameter_inputs()
    }

    fn program_key(&self, block: &TokenizedBlock) -> Option<ProgramKey> {
        (**self).program_key(block)
    }
}
