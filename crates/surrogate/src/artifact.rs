//! Servable surrogate artifacts.
//!
//! A [`SurrogateArtifact`] is the deployment form of a trained surrogate:
//! the model configuration, its trained weights, and the learned parameter
//! table the weights were trained against, all under one content
//! fingerprint. `difftune-matrix` writes one per cell
//! (`SURROGATE_<sim>_<uarch>_<spec>.json`) next to the cell's
//! `MATRIX_*.json`, and `difftune-serve` loads them with the same strict
//! verification as tables: schema tag, content fingerprint, table
//! fingerprint, and weight-shape compatibility are all checked before a
//! backend is registered.

use difftune_sim::{ParamBounds, SimParams};
use difftune_tensor::Params;
use serde::{Deserialize, Serialize};

use crate::{FeatureMlpConfig, FeatureMlpModel, IthemalConfig, IthemalModel, SurrogateModel};

/// Schema tag stamped into every artifact. Bump on breaking layout changes.
pub const SURROGATE_SCHEMA: &str = "difftune-surrogate/1";

/// The model family and hyperparameters an artifact was trained with —
/// everything needed to rebuild the architecture before loading weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelConfig {
    /// The Ithemal-style LSTM surrogate.
    Lstm(IthemalConfig),
    /// The feature-MLP surrogate.
    Mlp(FeatureMlpConfig),
}

impl ModelConfig {
    /// Builds a freshly initialized model of this configuration.
    pub fn build(&self) -> Box<dyn SurrogateModel> {
        match self {
            ModelConfig::Lstm(config) => Box::new(IthemalModel::new(*config)),
            ModelConfig::Mlp(config) => Box::new(FeatureMlpModel::new(*config)),
        }
    }

    /// The model family name (`"lstm"` or `"mlp"`).
    pub fn family(&self) -> &'static str {
        match self {
            ModelConfig::Lstm(_) => "lstm",
            ModelConfig::Mlp(_) => "mlp",
        }
    }

    /// A canonical byte rendering for fingerprinting: a family discriminant
    /// followed by every hyperparameter in declaration order.
    fn digest_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        match self {
            ModelConfig::Lstm(c) => {
                bytes.push(0);
                for dim in [c.embed_dim, c.hidden_dim, c.instr_layers, c.block_layers] {
                    bytes.extend((dim as u64).to_le_bytes());
                }
                bytes.push(u8::from(c.parameter_inputs));
                bytes.extend(c.seed.to_le_bytes());
            }
            ModelConfig::Mlp(c) => {
                bytes.push(1);
                bytes.extend((c.hidden_dim as u64).to_le_bytes());
                bytes.push(u8::from(c.parameter_inputs));
                bytes.extend(c.seed.to_le_bytes());
            }
        }
        bytes
    }
}

/// A fingerprint-verified, servable snapshot of a trained surrogate.
///
/// The artifact is self-contained: it embeds the learned parameter table the
/// surrogate's feature inputs are derived from, so a serving process needs no
/// other file to answer predictions. [`SurrogateArtifact::from_json`] refuses
/// anything whose schema, content fingerprint, table fingerprint, or weight
/// shapes do not verify.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateArtifact {
    /// Always [`SURROGATE_SCHEMA`] for records written by this version.
    pub schema: String,
    /// The matrix cell id (`sim:uarch:spec`) this surrogate was trained in.
    pub cell: String,
    /// Model family and hyperparameters.
    pub config: ModelConfig,
    /// Trained weight tensors.
    pub weights: Params,
    /// Flat encoding of the learned parameter table
    /// ([`SimParams::to_flat`]) the surrogate consumes as feature inputs.
    pub learned_table: Vec<f64>,
    /// [`SimParams::fingerprint_hex`] of the learned table.
    pub table_fingerprint: String,
    /// [`SurrogateArtifact::stable_fingerprint`] in `{:#018x}` rendering,
    /// covering cell, config, weights, and table.
    pub fingerprint: String,
}

impl SurrogateArtifact {
    /// Snapshots a trained model and its learned table into an artifact.
    ///
    /// The caller asserts that `model` was built from `config`; the stamped
    /// fingerprints make any later drift detectable.
    pub fn new(
        cell: &str,
        config: ModelConfig,
        model: &dyn SurrogateModel,
        table: &SimParams,
    ) -> Self {
        let mut artifact = SurrogateArtifact {
            schema: SURROGATE_SCHEMA.to_string(),
            cell: cell.to_string(),
            config,
            weights: model.params().clone(),
            learned_table: table.to_flat(),
            table_fingerprint: table.fingerprint_hex(),
            fingerprint: String::new(),
        };
        artifact.fingerprint = format!("{:#018x}", artifact.stable_fingerprint());
        artifact
    }

    /// Snapshots already-saved weights (e.g. a session checkpoint's
    /// `surrogate_params`) into an artifact, checking that the weights fit a
    /// fresh build of `config` first. This is how checkpoint cells get
    /// servable surrogates outside the matrix flow.
    ///
    /// # Errors
    ///
    /// Returns the weight-compatibility error when `weights` does not match
    /// the tensors `config` builds.
    pub fn from_weights(
        cell: &str,
        config: ModelConfig,
        weights: &Params,
        table: &SimParams,
    ) -> Result<Self, String> {
        check_weights_compatible(config.build().params(), weights)?;
        let mut artifact = SurrogateArtifact {
            schema: SURROGATE_SCHEMA.to_string(),
            cell: cell.to_string(),
            config,
            weights: weights.clone(),
            learned_table: table.to_flat(),
            table_fingerprint: table.fingerprint_hex(),
            fingerprint: String::new(),
        };
        artifact.fingerprint = format!("{:#018x}", artifact.stable_fingerprint());
        Ok(artifact)
    }

    /// Order-sensitive FNV-1a digest over the cell id, the configuration,
    /// every weight tensor (name, shape, and `f32` bit patterns), and the
    /// learned table's `f64` bit patterns — stable across processes and Rust
    /// versions, and independent of the stored
    /// [`fingerprint`](SurrogateArtifact::fingerprint) field itself.
    pub fn stable_fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        bytes.extend(self.cell.as_bytes());
        bytes.push(0xff);
        bytes.extend(self.config.digest_bytes());
        bytes.push(0xff);
        for (_, name, tensor) in self.weights.iter() {
            bytes.extend(name.as_bytes());
            bytes.push(0x00);
            bytes.extend((tensor.shape().len() as u64).to_le_bytes());
            for &dim in tensor.shape() {
                bytes.extend((dim as u64).to_le_bytes());
            }
            for &value in tensor.data() {
                bytes.extend(value.to_bits().to_le_bytes());
            }
        }
        bytes.push(0xff);
        for &value in &self.learned_table {
            bytes.extend(value.to_bits().to_le_bytes());
        }
        fnv1a(bytes)
    }

    /// The conventional file name for this artifact
    /// (`SURROGATE_<sim>_<uarch>_<spec>.json`).
    pub fn file_name(&self) -> String {
        surrogate_file_name(&self.cell)
    }

    /// Reconstructs the learned parameter table embedded in the artifact.
    pub fn table(&self) -> SimParams {
        SimParams::from_flat(&self.learned_table, &ParamBounds::default())
    }

    /// Builds the model from the stored configuration and loads the stored
    /// weights into it, after checking tensor names and shapes against a
    /// fresh build (the same compatibility rule session checkpoints use).
    pub fn load_model(&self) -> Result<Box<dyn SurrogateModel>, String> {
        let mut model = self.config.build();
        check_weights_compatible(model.params(), &self.weights)?;
        *model.params_mut() = self.weights.clone();
        Ok(model)
    }

    /// Verifies every integrity property of the artifact: the schema tag,
    /// the content fingerprint, the table length and fingerprint, and weight
    /// compatibility with a fresh build of the stored configuration.
    pub fn verify(&self) -> Result<(), String> {
        if self.schema != SURROGATE_SCHEMA {
            return Err(format!(
                "surrogate artifact has schema {:?}, this build reads {SURROGATE_SCHEMA:?}",
                self.schema
            ));
        }
        let expected = format!("{:#018x}", self.stable_fingerprint());
        if self.fingerprint != expected {
            return Err(format!(
                "surrogate artifact fingerprint mismatch: recorded {:?}, content hashes to \
                 {expected:?} — the artifact was corrupted or hand-edited",
                self.fingerprint
            ));
        }
        let table_len = SimParams::uniform_default().num_parameters();
        if self.learned_table.len() != table_len {
            return Err(format!(
                "surrogate artifact embeds a table of {} parameters, the opcode registry \
                 needs {table_len}",
                self.learned_table.len()
            ));
        }
        let table = self.table();
        if table.fingerprint_hex() != self.table_fingerprint {
            return Err(format!(
                "surrogate artifact table fingerprint mismatch: recorded {:?}, table hashes \
                 to {:?}",
                self.table_fingerprint,
                table.fingerprint_hex()
            ));
        }
        check_weights_compatible(self.config.build().params(), &self.weights)
    }

    /// Serializes the artifact to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a SurrogateArtifact always serializes")
    }

    /// Deserializes an artifact **without** verifying it. Callers that want
    /// to downgrade integrity failures to warnings (lenient directory loads)
    /// parse with this and run [`SurrogateArtifact::verify`] themselves;
    /// everything else should use [`SurrogateArtifact::from_json`].
    ///
    /// # Errors
    ///
    /// Fails only when the JSON does not parse as an artifact at all.
    pub fn parse_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|error| format!("{error:?}"))
    }

    /// Deserializes and strictly verifies an artifact
    /// (see [`SurrogateArtifact::verify`]).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let artifact = SurrogateArtifact::parse_json(json)?;
        artifact.verify()?;
        Ok(artifact)
    }
}

/// The per-cell artifact file name (`SURROGATE_<cell>.json`, with
/// non-alphanumeric characters mapped to `_` — the same convention as
/// `MATRIX_*.json` cell files).
pub fn surrogate_file_name(cell: &str) -> String {
    let sanitized: String = cell
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("SURROGATE_{sanitized}.json")
}

/// Checks that saved weights fit a freshly built model (same tensor count,
/// names, and shapes, in order).
fn check_weights_compatible(fresh: &Params, saved: &Params) -> Result<(), String> {
    if fresh.len() != saved.len() {
        return Err(format!(
            "surrogate artifact has {} weight tensors but the stored configuration builds {}",
            saved.len(),
            fresh.len()
        ));
    }
    for ((_, fresh_name, fresh_value), (_, saved_name, saved_value)) in
        fresh.iter().zip(saved.iter())
    {
        if fresh_name != saved_name || fresh_value.shape() != saved_value.shape() {
            return Err(format!(
                "surrogate artifact weight mismatch: artifact has {saved_name} {:?}, the \
                 stored configuration expects {fresh_name} {:?}",
                saved_value.shape(),
                fresh_value.shape()
            ));
        }
    }
    Ok(())
}

/// Order-sensitive FNV-1a (local copy of `difftune_bench::record::fnv1a`;
/// this crate sits below `bench` in the dependency graph).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> SurrogateArtifact {
        let config = ModelConfig::Mlp(FeatureMlpConfig {
            hidden_dim: 4,
            parameter_inputs: true,
            seed: 7,
        });
        let model = config.build();
        let mut table = SimParams::uniform_default();
        table.dispatch_width = 6;
        SurrogateArtifact::new("uop:haswell:llvm_sim", config, model.as_ref(), &table)
    }

    #[test]
    fn round_trips_through_json_and_loads_identical_weights() {
        let artifact = tiny_artifact();
        let back = SurrogateArtifact::from_json(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.file_name(), "SURROGATE_uop_haswell_llvm_sim.json");
        assert_eq!(back.table().dispatch_width, 6);
        let model = back.load_model().unwrap();
        assert_eq!(model.params(), &artifact.weights);
    }

    #[test]
    fn fingerprint_covers_weights_and_table() {
        let base = tiny_artifact();
        let mut tampered_table = base.clone();
        tampered_table.learned_table[0] += 1.0;
        assert_ne!(
            base.stable_fingerprint(),
            tampered_table.stable_fingerprint()
        );
        let mut tampered_weights = base.clone();
        let id = tampered_weights.weights.by_name("mlp.head.w").unwrap();
        tampered_weights.weights.get_mut(id).data_mut()[0] += 1.0;
        assert_ne!(
            base.stable_fingerprint(),
            tampered_weights.stable_fingerprint()
        );
    }

    #[test]
    fn from_weights_rebuilds_a_verifiable_artifact_from_saved_tensors() {
        let base = tiny_artifact();
        let rebuilt = SurrogateArtifact::from_weights(
            "uop:haswell:llvm_sim",
            base.config,
            &base.weights,
            &base.table(),
        )
        .unwrap();
        rebuilt.verify().unwrap();
        assert_eq!(rebuilt.fingerprint, base.fingerprint);

        let wrong = ModelConfig::Mlp(FeatureMlpConfig {
            hidden_dim: 8,
            parameter_inputs: true,
            seed: 7,
        });
        let error =
            SurrogateArtifact::from_weights("c", wrong, &base.weights, &base.table()).unwrap_err();
        assert!(error.contains("weight"), "{error}");
    }

    #[test]
    fn rejects_tampered_content() {
        let mut artifact = tiny_artifact();
        artifact.learned_table[0] += 1.0;
        let error = SurrogateArtifact::from_json(&artifact.to_json()).unwrap_err();
        assert!(error.contains("fingerprint mismatch"), "{error}");
    }

    #[test]
    fn rejects_stale_table_fingerprint() {
        let mut artifact = tiny_artifact();
        artifact.table_fingerprint = "0x0000000000000000".to_string();
        artifact.fingerprint = format!("{:#018x}", artifact.stable_fingerprint());
        let error = SurrogateArtifact::from_json(&artifact.to_json()).unwrap_err();
        assert!(error.contains("table fingerprint"), "{error}");
    }

    #[test]
    fn rejects_weights_that_do_not_fit_the_configuration() {
        let mut artifact = tiny_artifact();
        artifact.config = ModelConfig::Mlp(FeatureMlpConfig {
            hidden_dim: 8,
            parameter_inputs: true,
            seed: 7,
        });
        artifact.fingerprint = format!("{:#018x}", artifact.stable_fingerprint());
        let error = SurrogateArtifact::from_json(&artifact.to_json()).unwrap_err();
        assert!(error.contains("weight"), "{error}");
    }

    #[test]
    fn rejects_unknown_schema() {
        let mut artifact = tiny_artifact();
        artifact.schema = "difftune-surrogate/99".to_string();
        let error = SurrogateArtifact::from_json(&artifact.to_json()).unwrap_err();
        assert!(error.contains("schema"), "{error}");
    }

    #[test]
    fn lstm_configs_build_and_fingerprint_distinctly() {
        let lstm = ModelConfig::Lstm(IthemalConfig {
            embed_dim: 4,
            hidden_dim: 4,
            instr_layers: 1,
            block_layers: 1,
            parameter_inputs: true,
            seed: 7,
        });
        assert_eq!(lstm.family(), "lstm");
        let model = lstm.build();
        let table = SimParams::uniform_default();
        let artifact = SurrogateArtifact::new("mca:haswell:llvm_mca", lstm, model.as_ref(), &table);
        artifact.verify().unwrap();
        assert_ne!(artifact.fingerprint, tiny_artifact().fingerprint);
    }
}
