//! The search space and the bandit-driven ensemble tuner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::techniques::{
    DifferentialEvolution, HillClimb, PatternSearch, RandomSearch, SimulatedAnnealing, Technique,
};

/// A bounded box search space over `f64` parameter vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Per-dimension lower bounds.
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds.
    pub upper: Vec<f64>,
}

impl SearchSpace {
    /// Creates a space with the given per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors differ in length or any lower bound exceeds
    /// its upper bound.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound length mismatch");
        assert!(
            lower.iter().zip(&upper).all(|(l, u)| l <= u),
            "every lower bound must not exceed its upper bound"
        );
        SearchSpace { lower, upper }
    }

    /// A space where every dimension shares the same bounds.
    pub fn uniform(dims: usize, lower: f64, upper: f64) -> Self {
        SearchSpace::new(vec![lower; dims], vec![upper; dims])
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Clamps a candidate into the box.
    pub fn clamp(&self, candidate: &mut [f64]) {
        for ((value, lower), upper) in candidate.iter_mut().zip(&self.lower).zip(&self.upper) {
            *value = value.clamp(*lower, *upper);
        }
    }

    /// Samples a uniformly random point.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(&l, &u)| if l == u { l } else { rng.gen_range(l..=u) })
            .collect()
    }
}

/// Tuner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Random seed.
    pub seed: u64,
    /// UCB1 exploration constant.
    pub exploration: f64,
    /// Optional explicit starting point (otherwise a random sample is used).
    pub start_from_sample: bool,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            seed: 0,
            exploration: 1.4,
            start_from_sample: true,
        }
    }
}

/// The outcome of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// The best parameter vector found.
    pub best: Vec<f64>,
    /// The cost of the best vector.
    pub best_cost: f64,
    /// Cost of the best-so-far configuration after each evaluation.
    pub history: Vec<f64>,
    /// How many times each technique was chosen, by technique name.
    pub technique_uses: Vec<(String, usize)>,
}

/// An OpenTuner-style ensemble tuner: a UCB1 multi-armed bandit chooses which
/// search technique proposes the next candidate.
#[derive(Debug)]
pub struct BanditTuner {
    space: SearchSpace,
    config: TunerConfig,
    techniques: Vec<Box<dyn Technique>>,
    uses: Vec<usize>,
    rewards: Vec<f64>,
}

impl BanditTuner {
    /// Creates a tuner with the default ensemble of techniques.
    pub fn new(space: SearchSpace, config: TunerConfig) -> Self {
        let techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(RandomSearch::new()),
            Box::new(HillClimb::new(0.1)),
            Box::new(HillClimb::new(0.4)),
            Box::new(SimulatedAnnealing::new(1.0)),
            Box::new(DifferentialEvolution::new(12)),
            Box::new(PatternSearch::new()),
        ];
        let count = techniques.len();
        BanditTuner {
            space,
            config,
            techniques,
            uses: vec![0; count],
            rewards: vec![0.0; count],
        }
    }

    /// Creates a tuner with a caller-provided ensemble.
    pub fn with_techniques(
        space: SearchSpace,
        config: TunerConfig,
        techniques: Vec<Box<dyn Technique>>,
    ) -> Self {
        assert!(
            !techniques.is_empty(),
            "the ensemble needs at least one technique"
        );
        let count = techniques.len();
        BanditTuner {
            space,
            config,
            techniques,
            uses: vec![0; count],
            rewards: vec![0.0; count],
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Runs the tuner for a fixed number of objective evaluations, minimizing
    /// `objective`.
    pub fn optimize<F>(&mut self, mut objective: F, evaluations: usize) -> TuneResult
    where
        F: FnMut(&[f64]) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut best = if self.config.start_from_sample {
            self.space.sample(&mut rng)
        } else {
            self.space.lower.clone()
        };
        let mut best_cost = objective(&best);
        let mut history = Vec::with_capacity(evaluations);
        history.push(best_cost);

        for iteration in 1..evaluations {
            let technique_index = self.pick_technique(iteration);
            let mut candidate =
                self.techniques[technique_index].propose(&mut rng, &best, best_cost, &self.space);
            self.space.clamp(&mut candidate);
            let cost = objective(&candidate);

            // Reward: relative improvement over the current best (clamped to [0, 1]).
            let improvement = if cost < best_cost && best_cost.abs() > f64::EPSILON {
                ((best_cost - cost) / best_cost.abs()).clamp(0.0, 1.0)
            } else {
                0.0
            };
            self.uses[technique_index] += 1;
            self.rewards[technique_index] += improvement;
            self.techniques[technique_index].feedback(&candidate, cost, cost < best_cost);

            if cost < best_cost {
                best_cost = cost;
                best = candidate;
            }
            history.push(best_cost);
        }

        TuneResult {
            best,
            best_cost,
            history,
            technique_uses: self
                .techniques
                .iter()
                .zip(&self.uses)
                .map(|(t, &u)| (t.name().to_string(), u))
                .collect(),
        }
    }

    /// UCB1 selection over the ensemble.
    fn pick_technique(&self, iteration: usize) -> usize {
        // Try every technique once first.
        if let Some(unused) = self.uses.iter().position(|&u| u == 0) {
            return unused;
        }
        let total: usize = self.uses.iter().sum::<usize>().max(1);
        let mut best_index = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (index, (&uses, &reward)) in self.uses.iter().zip(&self.rewards).enumerate() {
            let mean = reward / uses as f64;
            let bonus = self.config.exploration * ((total as f64).ln() / uses as f64).sqrt();
            let score = mean + bonus;
            if score > best_score {
                best_score = score;
                best_index = index;
            }
        }
        let _ = iteration;
        best_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 2.0).powi(2)).sum()
    }

    #[test]
    fn search_space_sampling_and_clamping() {
        let space = SearchSpace::uniform(3, -1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let point = space.sample(&mut rng);
            assert!(point.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
        let mut out_of_range = vec![5.0, -5.0, 0.0];
        space.clamp(&mut out_of_range);
        assert_eq!(out_of_range, vec![1.0, -1.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        let _ = SearchSpace::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn tuner_improves_on_a_smooth_objective() {
        let space = SearchSpace::uniform(6, -10.0, 10.0);
        let mut tuner = BanditTuner::new(
            space,
            TunerConfig {
                seed: 3,
                ..TunerConfig::default()
            },
        );
        let result = tuner.optimize(sphere, 800);
        assert!(
            result.best_cost < result.history[0],
            "must improve over the initial sample"
        );
        assert!(
            result.best_cost < 10.0,
            "800 evaluations should get close on 6 dimensions, got {}",
            result.best_cost
        );
        assert_eq!(result.history.len(), 800);
        // History is monotone non-increasing (best-so-far).
        assert!(result.history.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn tuner_struggles_in_high_dimensions_with_small_budgets() {
        // The paper's core observation: with a budget that is tiny relative to
        // the dimensionality, black-box search barely improves.
        let dims = 2000;
        let space = SearchSpace::uniform(dims, 0.0, 5.0);
        let mut tuner = BanditTuner::new(
            space,
            TunerConfig {
                seed: 1,
                ..TunerConfig::default()
            },
        );
        let result = tuner.optimize(sphere, 300);
        // Optimum would be 0; random points average ~dims * E[(x-2)^2] ≈ 2.3k.
        assert!(
            result.best_cost > 1000.0,
            "high-dimensional search should remain far from optimal"
        );
    }

    #[test]
    fn all_techniques_get_exercised() {
        let space = SearchSpace::uniform(4, 0.0, 1.0);
        let mut tuner = BanditTuner::new(space, TunerConfig::default());
        let result = tuner.optimize(|x| x.iter().sum(), 200);
        assert!(result.technique_uses.iter().all(|(_, uses)| *uses > 0));
    }

    #[test]
    fn deterministic_given_a_seed() {
        let space = SearchSpace::uniform(5, 0.0, 3.0);
        let run = |seed| {
            let mut tuner = BanditTuner::new(
                space.clone(),
                TunerConfig {
                    seed,
                    ..TunerConfig::default()
                },
            );
            tuner.optimize(sphere, 150).best_cost
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
