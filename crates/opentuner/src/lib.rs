//! # difftune-opentuner
//!
//! A black-box global optimization baseline in the style of OpenTuner
//! (Ansel et al. 2014), the comparison point the paper uses in Section V-C.
//!
//! OpenTuner is an iterative tuner that uses a multi-armed bandit to pick, on
//! every iteration, the most promising search technique from an ensemble
//! spanning convex and non-convex methods. This crate reproduces that
//! structure generically over a bounded vector of real-valued parameters:
//!
//! * [`SearchSpace`] — per-dimension lower/upper bounds;
//! * [`Technique`] — the ensemble members: random search, greedy hill
//!   climbing, simulated annealing, differential evolution, and pattern
//!   search;
//! * [`BanditTuner`] — a UCB1 bandit over the ensemble with a fixed
//!   evaluation budget (the paper gives OpenTuner the same number of
//!   evaluations DiffTune uses end to end).
//!
//! The tuner knows nothing about CPU simulators; the benchmark harness wires
//! its objective to "llvm-mca error on a sample of training blocks".
//!
//! # Example
//!
//! ```
//! use difftune_opentuner::{BanditTuner, SearchSpace, TunerConfig};
//!
//! // Minimize the distance to a target point inside the box [0, 10]^4.
//! let space = SearchSpace::uniform(4, 0.0, 10.0);
//! let target = [1.0, 2.0, 3.0, 4.0];
//! let mut tuner = BanditTuner::new(space, TunerConfig { seed: 7, ..TunerConfig::default() });
//! let result = tuner.optimize(
//!     |x| x.iter().zip(&target).map(|(a, b)| (a - b).powi(2)).sum(),
//!     500,
//! );
//! assert!(result.best_cost < 5.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod techniques;
mod tuner;

pub use techniques::{
    DifferentialEvolution, HillClimb, PatternSearch, RandomSearch, SimulatedAnnealing, Technique,
};
pub use tuner::{BanditTuner, SearchSpace, TuneResult, TunerConfig};
