//! The ensemble of search techniques driven by the bandit.

use rand::rngs::StdRng;
use rand::Rng;

use crate::tuner::SearchSpace;

/// A search technique: proposes the next candidate given the best-so-far.
pub trait Technique: std::fmt::Debug + Send {
    /// A short name for reporting.
    fn name(&self) -> &'static str;

    /// Proposes a new candidate.
    fn propose(
        &mut self,
        rng: &mut StdRng,
        best: &[f64],
        best_cost: f64,
        space: &SearchSpace,
    ) -> Vec<f64>;

    /// Receives the evaluation of the last proposal (whether it improved the
    /// global best). Techniques with internal state (annealing temperature,
    /// populations) update themselves here. The default does nothing.
    fn feedback(&mut self, _candidate: &[f64], _cost: f64, _improved: bool) {}
}

/// Uniform random sampling over the whole space.
#[derive(Debug, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Creates the technique.
    pub fn new() -> Self {
        RandomSearch
    }
}

impl Technique for RandomSearch {
    fn name(&self) -> &'static str {
        "random-search"
    }

    fn propose(
        &mut self,
        rng: &mut StdRng,
        _best: &[f64],
        _best_cost: f64,
        space: &SearchSpace,
    ) -> Vec<f64> {
        space.sample(rng)
    }
}

/// Greedy hill climbing: perturb a random subset of coordinates of the best
/// configuration by a fraction of the parameter range.
#[derive(Debug)]
pub struct HillClimb {
    step_fraction: f64,
}

impl HillClimb {
    /// Creates a hill climber whose steps span `step_fraction` of each range.
    pub fn new(step_fraction: f64) -> Self {
        HillClimb { step_fraction }
    }
}

impl Technique for HillClimb {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn propose(
        &mut self,
        rng: &mut StdRng,
        best: &[f64],
        _best_cost: f64,
        space: &SearchSpace,
    ) -> Vec<f64> {
        let mut candidate = best.to_vec();
        let dims = space.dims().max(1);
        // Perturb ~1% of coordinates (at least one).
        let count = (dims / 100).max(1);
        for _ in 0..count {
            let dim = rng.gen_range(0..dims);
            let range = space.upper[dim] - space.lower[dim];
            candidate[dim] += rng.gen_range(-1.0..1.0) * range * self.step_fraction;
        }
        candidate
    }
}

/// Simulated annealing: hill climbing with a temperature-controlled step size
/// that cools every time a proposal fails to improve.
#[derive(Debug)]
pub struct SimulatedAnnealing {
    temperature: f64,
}

impl SimulatedAnnealing {
    /// Creates an annealer with the given starting temperature (1.0 means
    /// steps initially span the full parameter range).
    pub fn new(temperature: f64) -> Self {
        SimulatedAnnealing { temperature }
    }

    /// The current temperature (exposed for tests).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl Technique for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn propose(
        &mut self,
        rng: &mut StdRng,
        best: &[f64],
        _best_cost: f64,
        space: &SearchSpace,
    ) -> Vec<f64> {
        best.iter()
            .enumerate()
            .map(|(dim, &value)| {
                let range = space.upper[dim] - space.lower[dim];
                if rng.gen_bool(0.05) {
                    value + rng.gen_range(-1.0..1.0) * range * self.temperature
                } else {
                    value
                }
            })
            .collect()
    }

    fn feedback(&mut self, _candidate: &[f64], _cost: f64, improved: bool) {
        if improved {
            self.temperature = (self.temperature * 1.05).min(1.0);
        } else {
            self.temperature = (self.temperature * 0.995).max(0.01);
        }
    }
}

/// Differential evolution over a small population.
#[derive(Debug)]
pub struct DifferentialEvolution {
    population_size: usize,
    population: Vec<Vec<f64>>,
    costs: Vec<f64>,
    last_proposal: Option<Vec<f64>>,
}

impl DifferentialEvolution {
    /// Creates a differential-evolution technique with the given population size.
    pub fn new(population_size: usize) -> Self {
        DifferentialEvolution {
            population_size: population_size.max(4),
            population: Vec::new(),
            costs: Vec::new(),
            last_proposal: None,
        }
    }
}

impl Technique for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "differential-evolution"
    }

    fn propose(
        &mut self,
        rng: &mut StdRng,
        best: &[f64],
        best_cost: f64,
        space: &SearchSpace,
    ) -> Vec<f64> {
        // Seed the population lazily around the best-so-far.
        while self.population.len() < self.population_size {
            let member = if self.population.is_empty() {
                best.to_vec()
            } else {
                space.sample(rng)
            };
            self.population.push(member);
            self.costs.push(f64::INFINITY);
        }
        if self.costs[0].is_infinite() {
            self.costs[0] = best_cost;
        }
        let pick = |rng: &mut StdRng| rng.gen_range(0..self.population_size);
        let (a, b, c) = (pick(rng), pick(rng), pick(rng));
        let f = 0.6;
        let crossover = 0.2;
        let candidate: Vec<f64> = (0..space.dims())
            .map(|dim| {
                if rng.gen_bool(crossover) {
                    self.population[a][dim]
                        + f * (self.population[b][dim] - self.population[c][dim])
                } else {
                    best[dim]
                }
            })
            .collect();
        self.last_proposal = Some(candidate.clone());
        candidate
    }

    fn feedback(&mut self, candidate: &[f64], cost: f64, _improved: bool) {
        // Replace the worst member if the candidate is better.
        if let Some((worst_index, &worst_cost)) = self
            .costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            if cost < worst_cost {
                self.population[worst_index] = candidate.to_vec();
                self.costs[worst_index] = cost;
            }
        }
    }
}

/// Pattern (coordinate) search: steps one coordinate at a time by a shrinking
/// step size.
#[derive(Debug)]
pub struct PatternSearch {
    step: f64,
    next_dim: usize,
    direction: f64,
}

impl PatternSearch {
    /// Creates a pattern search starting at 25% of each parameter range.
    pub fn new() -> Self {
        PatternSearch {
            step: 0.25,
            next_dim: 0,
            direction: 1.0,
        }
    }
}

impl Default for PatternSearch {
    fn default() -> Self {
        PatternSearch::new()
    }
}

impl Technique for PatternSearch {
    fn name(&self) -> &'static str {
        "pattern-search"
    }

    fn propose(
        &mut self,
        _rng: &mut StdRng,
        best: &[f64],
        _best_cost: f64,
        space: &SearchSpace,
    ) -> Vec<f64> {
        let mut candidate = best.to_vec();
        if candidate.is_empty() {
            return candidate;
        }
        let dim = self.next_dim % candidate.len();
        let range = space.upper[dim] - space.lower[dim];
        candidate[dim] += self.direction * self.step * range;
        candidate
    }

    fn feedback(&mut self, _candidate: &[f64], _cost: f64, improved: bool) {
        if improved {
            // Keep pushing the same coordinate in the same direction.
            return;
        }
        if self.direction > 0.0 {
            self.direction = -1.0;
        } else {
            self.direction = 1.0;
            self.next_dim = self.next_dim.wrapping_add(1);
            self.step = (self.step * 0.98).max(0.01);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::uniform(8, 0.0, 10.0)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn proposals_have_the_right_dimension() {
        let best = vec![5.0; 8];
        let mut techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(RandomSearch::new()),
            Box::new(HillClimb::new(0.2)),
            Box::new(SimulatedAnnealing::new(1.0)),
            Box::new(DifferentialEvolution::new(6)),
            Box::new(PatternSearch::new()),
        ];
        let mut r = rng();
        for technique in &mut techniques {
            let proposal = technique.propose(&mut r, &best, 1.0, &space());
            assert_eq!(
                proposal.len(),
                8,
                "{} proposal has wrong arity",
                technique.name()
            );
        }
    }

    #[test]
    fn hill_climb_changes_few_coordinates() {
        let best = vec![5.0; 8];
        let mut hill = HillClimb::new(0.1);
        let proposal = hill.propose(&mut rng(), &best, 1.0, &space());
        let changed = proposal.iter().zip(&best).filter(|(a, b)| a != b).count();
        assert!((1..=3).contains(&changed));
    }

    #[test]
    fn annealing_cools_on_failure_and_reheats_on_success() {
        let mut annealer = SimulatedAnnealing::new(0.5);
        annealer.feedback(&[], 1.0, false);
        assert!(annealer.temperature() < 0.5);
        annealer.feedback(&[], 1.0, true);
        assert!(annealer.temperature() > 0.49);
    }

    #[test]
    fn pattern_search_reverses_then_advances() {
        let mut pattern = PatternSearch::new();
        let best = vec![5.0; 8];
        let first = pattern.propose(&mut rng(), &best, 1.0, &space());
        assert!(first[0] > best[0]);
        pattern.feedback(&first, 10.0, false);
        let second = pattern.propose(&mut rng(), &best, 1.0, &space());
        assert!(
            second[0] < best[0],
            "after a failed step the direction reverses"
        );
        pattern.feedback(&second, 10.0, false);
        let third = pattern.propose(&mut rng(), &best, 1.0, &space());
        assert_eq!(
            third[0], best[0],
            "after both directions fail it moves to the next coordinate"
        );
        assert!(third[1] != best[1]);
    }

    #[test]
    fn differential_evolution_tracks_a_population() {
        let mut de = DifferentialEvolution::new(5);
        let best = vec![5.0; 8];
        let mut r = rng();
        let proposal = de.propose(&mut r, &best, 3.0, &space());
        de.feedback(&proposal, 1.0, true);
        let second = de.propose(&mut r, &best, 1.0, &space());
        assert_eq!(second.len(), 8);
    }
}
