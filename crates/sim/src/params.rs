//! The simulator parameter table (the θ that DiffTune optimizes).

use serde::{Deserialize, Serialize};

use difftune_isa::{OpcodeId, OpcodeRegistry};

/// Number of execution ports modeled by the simulators.
///
/// Following the paper (Section V-A), all microarchitectures are simulated
/// with the Haswell default of 10 ports, and port groups are not modeled.
pub const NUM_PORTS: usize = 10;

/// Number of `ReadAdvanceCycles` entries per instruction (one per source
/// operand slot, as in Table II).
pub const NUM_READ_ADVANCE: usize = 3;

/// Number of per-instruction parameters (`NumMicroOps` + `WriteLatency` +
/// `ReadAdvanceCycles` + `PortMap`).
pub const PER_INST_PARAMS: usize = 2 + NUM_READ_ADVANCE + NUM_PORTS;

/// Per-opcode parameters (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerInstParams {
    /// How many micro-ops the instruction decomposes into (≥ 1).
    pub num_micro_ops: u32,
    /// Cycles before the destination operands can be read (≥ 0). A latency of
    /// zero means dependent instructions can issue in the same cycle.
    pub write_latency: u32,
    /// Cycles by which to accelerate the effective `WriteLatency` of the k-th
    /// source operand (≥ 0); the subtraction is clipped at zero.
    pub read_advance_cycles: [u32; NUM_READ_ADVANCE],
    /// The number of cycles the instruction occupies each execution port (≥ 0).
    /// In the llvm_sim-style simulator this is instead interpreted as the
    /// number of micro-ops dispatched to each port.
    pub port_map: [u32; NUM_PORTS],
}

impl PerInstParams {
    /// A neutral default: a single micro-op, one cycle of latency, no read
    /// advance, one cycle on port 0.
    pub fn unit() -> Self {
        let mut port_map = [0; NUM_PORTS];
        port_map[0] = 1;
        PerInstParams {
            num_micro_ops: 1,
            write_latency: 1,
            read_advance_cycles: [0; NUM_READ_ADVANCE],
            port_map,
        }
    }

    /// The maximum number of cycles this instruction holds any single port.
    pub fn max_port_cycles(&self) -> u32 {
        self.port_map.iter().copied().max().unwrap_or(0)
    }

    /// True if the instruction uses no execution port at all.
    pub fn uses_no_port(&self) -> bool {
        self.port_map.iter().all(|&c| c == 0)
    }
}

impl Default for PerInstParams {
    fn default() -> Self {
        PerInstParams::unit()
    }
}

/// Lower-bound constraints for each parameter, used when extracting learned
/// floating-point values back into valid integer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamBounds {
    /// Lower bound for `DispatchWidth` (1).
    pub dispatch_width_min: u32,
    /// Lower bound for `ReorderBufferSize` (1).
    pub reorder_buffer_min: u32,
    /// Lower bound for `NumMicroOps` (1).
    pub num_micro_ops_min: u32,
    /// Lower bound for `WriteLatency` (0).
    pub write_latency_min: u32,
    /// Lower bound for `ReadAdvanceCycles` (0).
    pub read_advance_min: u32,
    /// Lower bound for `PortMap` entries (0).
    pub port_map_min: u32,
}

impl Default for ParamBounds {
    fn default() -> Self {
        ParamBounds {
            dispatch_width_min: 1,
            reorder_buffer_min: 1,
            num_micro_ops_min: 1,
            write_latency_min: 0,
            read_advance_min: 0,
            port_map_min: 0,
        }
    }
}

/// The full simulator parameter table: global parameters plus one
/// [`PerInstParams`] per opcode in the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// How many micro-ops can be dispatched per cycle (global, ≥ 1).
    pub dispatch_width: u32,
    /// How many micro-ops fit in the reorder buffer (global, ≥ 1).
    pub reorder_buffer_size: u32,
    /// Per-opcode parameters, indexed by [`OpcodeId`].
    pub per_inst: Vec<PerInstParams>,
}

impl SimParams {
    /// Creates a table with the given global parameters and a uniform
    /// per-instruction entry for every opcode in the global registry.
    pub fn with_uniform(
        dispatch_width: u32,
        reorder_buffer_size: u32,
        entry: PerInstParams,
    ) -> Self {
        let count = OpcodeRegistry::global().len();
        SimParams {
            dispatch_width,
            reorder_buffer_size,
            per_inst: vec![entry; count],
        }
    }

    /// A neutral table: dispatch width 4, reorder buffer 128, and
    /// [`PerInstParams::unit`] for every opcode. Useful as a starting point in
    /// examples and tests; not intended to be accurate.
    pub fn uniform_default() -> Self {
        SimParams::with_uniform(4, 128, PerInstParams::unit())
    }

    /// The per-instruction entry for an opcode.
    ///
    /// # Panics
    ///
    /// Panics if the opcode id is out of range for this table.
    pub fn inst(&self, id: OpcodeId) -> &PerInstParams {
        &self.per_inst[id.index()]
    }

    /// Mutable access to the per-instruction entry for an opcode.
    pub fn inst_mut(&mut self, id: OpcodeId) -> &mut PerInstParams {
        &mut self.per_inst[id.index()]
    }

    /// Number of opcodes covered by this table.
    pub fn num_opcodes(&self) -> usize {
        self.per_inst.len()
    }

    /// Total number of scalar parameters in the table
    /// (`2 + num_opcodes × 15`, i.e. 11265-like in the paper's setting).
    pub fn num_parameters(&self) -> usize {
        2 + self.per_inst.len() * PER_INST_PARAMS
    }

    /// Flattens the table into a vector of `f64`, in a fixed order:
    /// `[dispatch_width, reorder_buffer_size,
    ///   opcode0.num_micro_ops, opcode0.write_latency, opcode0.read_advance[0..3], opcode0.port_map[0..10],
    ///   opcode1... ]`.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.num_parameters());
        flat.push(self.dispatch_width as f64);
        flat.push(self.reorder_buffer_size as f64);
        for p in &self.per_inst {
            flat.push(p.num_micro_ops as f64);
            flat.push(p.write_latency as f64);
            flat.extend(p.read_advance_cycles.iter().map(|&v| v as f64));
            flat.extend(p.port_map.iter().map(|&v| v as f64));
        }
        flat
    }

    /// Order-sensitive FNV-1a fingerprint of the table's flat `f64` encoding
    /// ([`Self::to_flat`], little-endian bit patterns), stable across
    /// processes and Rust versions — the digest is persisted in artifacts
    /// (`MATRIX_*.json`, `BENCH_*.json`) and compared across machines.
    ///
    /// Two tables fingerprint equal exactly when their flat encodings are
    /// bit-identical; integrity-checking a table loaded from an artifact
    /// against the artifact's recorded fingerprint catches any corruption or
    /// lossy decode.
    pub fn stable_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for value in self.to_flat() {
            for byte in value.to_bits().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0100_0000_01b3);
            }
        }
        hash
    }

    /// [`Self::stable_fingerprint`] in the conventional artifact rendering
    /// (`{:#018x}`, e.g. `0x00df35a022041e35`).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:#018x}", self.stable_fingerprint())
    }

    /// Reconstructs a table from a flat vector produced by [`Self::to_flat`]
    /// (or by an optimizer), rounding to integers and clamping to the bounds.
    ///
    /// # Panics
    ///
    /// Panics if the flat vector's length does not match `2 + n × 15` for some `n`.
    pub fn from_flat(flat: &[f64], bounds: &ParamBounds) -> Self {
        assert!(
            flat.len() >= 2 && (flat.len() - 2).is_multiple_of(PER_INST_PARAMS),
            "bad flat parameter length {}",
            flat.len()
        );
        let clamp = |v: f64, min: u32| -> u32 {
            let rounded = v.round();
            if rounded.is_nan() || rounded < min as f64 {
                min
            } else if rounded > u32::MAX as f64 {
                u32::MAX
            } else {
                rounded as u32
            }
        };
        let dispatch_width = clamp(flat[0], bounds.dispatch_width_min);
        let reorder_buffer_size = clamp(flat[1], bounds.reorder_buffer_min);
        let mut per_inst = Vec::with_capacity((flat.len() - 2) / PER_INST_PARAMS);
        let mut i = 2;
        while i < flat.len() {
            let num_micro_ops = clamp(flat[i], bounds.num_micro_ops_min);
            let write_latency = clamp(flat[i + 1], bounds.write_latency_min);
            let mut read_advance_cycles = [0; NUM_READ_ADVANCE];
            for (k, slot) in read_advance_cycles.iter_mut().enumerate() {
                *slot = clamp(flat[i + 2 + k], bounds.read_advance_min);
            }
            let mut port_map = [0; NUM_PORTS];
            for (k, slot) in port_map.iter_mut().enumerate() {
                *slot = clamp(flat[i + 2 + NUM_READ_ADVANCE + k], bounds.port_map_min);
            }
            per_inst.push(PerInstParams {
                num_micro_ops,
                write_latency,
                read_advance_cycles,
                port_map,
            });
            i += PER_INST_PARAMS;
        }
        SimParams {
            dispatch_width,
            reorder_buffer_size,
            per_inst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_paper_formula() {
        let params = SimParams::uniform_default();
        let n = OpcodeRegistry::global().len();
        // Table II: 2 global + 15 per-instruction parameters. With the paper's
        // 837 opcodes this would give 2 + 837 × 15 ≈ 11265 (the paper rounds the
        // global parameters into the count differently but the order matches).
        assert_eq!(params.num_parameters(), 2 + 15 * n);
        assert!(params.num_parameters() > 9_000);
    }

    #[test]
    fn flat_round_trip_is_identity_for_integer_tables() {
        let mut params = SimParams::uniform_default();
        params.dispatch_width = 6;
        params.reorder_buffer_size = 224;
        params.per_inst[3].write_latency = 7;
        params.per_inst[3].port_map[9] = 2;
        params.per_inst[10].read_advance_cycles[1] = 4;
        let flat = params.to_flat();
        assert_eq!(flat.len(), params.num_parameters());
        let back = SimParams::from_flat(&flat, &ParamBounds::default());
        assert_eq!(back, params);
    }

    #[test]
    fn from_flat_applies_bounds_and_rounding() {
        let params = SimParams::uniform_default();
        let mut flat = params.to_flat();
        flat[0] = -3.2; // dispatch width below bound
        flat[1] = 0.4; // rob below bound
        flat[2] = 0.1; // num_micro_ops below bound
        flat[3] = 2.6; // write latency rounds to 3
        let back = SimParams::from_flat(&flat, &ParamBounds::default());
        assert_eq!(back.dispatch_width, 1);
        assert_eq!(back.reorder_buffer_size, 1);
        assert_eq!(back.per_inst[0].num_micro_ops, 1);
        assert_eq!(back.per_inst[0].write_latency, 3);
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive_to_any_entry() {
        let base = SimParams::uniform_default();
        assert_eq!(base.stable_fingerprint(), base.stable_fingerprint());
        let mut changed = base.clone();
        changed.per_inst[7].port_map[2] += 1;
        assert_ne!(base.stable_fingerprint(), changed.stable_fingerprint());
        let hex = base.fingerprint_hex();
        assert!(hex.starts_with("0x") && hex.len() == 18, "bad hex {hex:?}");
        // A flat round trip of an integer table preserves the fingerprint —
        // the property artifact loaders rely on.
        let back = SimParams::from_flat(&changed.to_flat(), &ParamBounds::default());
        assert_eq!(back.stable_fingerprint(), changed.stable_fingerprint());
    }

    #[test]
    fn serde_round_trip() {
        let params = SimParams::uniform_default();
        let json = serde_json::to_string(&params).unwrap();
        let back: SimParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn per_inst_helpers() {
        let mut p = PerInstParams::unit();
        assert_eq!(p.max_port_cycles(), 1);
        assert!(!p.uses_no_port());
        p.port_map = [0; NUM_PORTS];
        assert!(p.uses_no_port());
        assert_eq!(p.max_port_cycles(), 0);
    }
}
