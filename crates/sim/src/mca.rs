//! An llvm-mca-style out-of-order superscalar simulator.
//!
//! The model follows the four stages described in the paper's Section II-A:
//!
//! * **dispatch** — up to `DispatchWidth` micro-ops enter the pipeline per
//!   cycle, each reserving reorder-buffer space;
//! * **issue** — an instruction waits until its source operands are ready
//!   (producer `WriteLatency` minus consumer `ReadAdvanceCycles`, clipped at
//!   zero) and until all execution ports it needs are available;
//! * **execute** — the instruction occupies each execution port for the number
//!   of cycles given by its `PortMap` entry;
//! * **retire** — instructions retire in program order, freeing their
//!   reorder-buffer entries.
//!
//! Like llvm-mca's default Intel model, the simulator ignores the frontend and
//! the memory hierarchy (all loads are assumed to hit L1 and have no extra
//! modeled latency beyond `WriteLatency`), and does not special-case zero
//! idioms. The block is unrolled for a fixed number of iterations (100 by
//! default, as in llvm-mca and BHive) so that loop-carried dependencies and
//! throughput limits shape the prediction.

use difftune_isa::{BasicBlock, OpcodeId, RegFamily};
use serde::{Deserialize, Serialize};

use crate::params::{SimParams, NUM_PORTS, NUM_READ_ADVANCE};
use crate::Simulator;

/// The llvm-mca-style simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McaSimulator {
    iterations: u32,
}

impl McaSimulator {
    /// Creates a simulator that unrolls blocks for `iterations` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn new(iterations: u32) -> Self {
        assert!(iterations > 0, "iteration count must be positive");
        McaSimulator { iterations }
    }

    /// The number of unrolled iterations used for each prediction.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Predicts the timing of a block and also returns the per-instruction
    /// timeline (dispatch/issue/execute/retire cycles of every dynamic
    /// instruction), useful for inspection and examples.
    pub fn trace(&self, params: &SimParams, block: &BasicBlock) -> Timeline {
        let mut timeline = Timeline {
            entries: Vec::new(),
            total_cycles: 0,
            iterations: self.iterations,
        };
        let total = simulate(params, block, self.iterations, Some(&mut timeline.entries));
        timeline.total_cycles = total;
        timeline
    }
}

impl Default for McaSimulator {
    /// A simulator with llvm-mca's default of 100 unrolled iterations.
    fn default() -> Self {
        McaSimulator::new(100)
    }
}

impl Simulator for McaSimulator {
    fn predict(&self, params: &SimParams, block: &BasicBlock) -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let total = simulate(params, block, self.iterations, None);
        total as f64 / self.iterations as f64
    }

    fn name(&self) -> &'static str {
        "llvm-mca"
    }
}

/// Timing of one dynamic instruction in a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Which unrolled iteration this instance belongs to.
    pub iteration: u32,
    /// Index of the instruction within the block.
    pub index: usize,
    /// Cycle at which the last micro-op of the instruction was dispatched.
    pub dispatch: u64,
    /// Cycle at which the instruction issued to its execution ports.
    pub issue: u64,
    /// Cycle at which execution (port occupancy and latency) completed.
    pub execute_end: u64,
    /// Cycle at which the instruction retired.
    pub retire: u64,
}

/// A full execution trace of a block under the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Per-dynamic-instruction timings, in program order.
    pub entries: Vec<TimelineEntry>,
    /// Total simulated cycles for all iterations.
    pub total_cycles: u64,
    /// Number of unrolled iterations simulated.
    pub iterations: u32,
}

impl Timeline {
    /// The predicted timing in cycles per iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        self.total_cycles as f64 / self.iterations as f64
    }
}

/// Pre-resolved static information about one instruction in the block.
struct StaticInst {
    opcode: OpcodeId,
    reads: Vec<RegFamily>,
    writes: Vec<RegFamily>,
    loads: bool,
    stores: bool,
}

fn prepare(block: &BasicBlock) -> Vec<StaticInst> {
    block
        .iter()
        .map(|inst| StaticInst {
            opcode: inst.opcode(),
            reads: inst.reads(),
            writes: inst.writes(),
            loads: inst.loads(),
            stores: inst.stores(),
        })
        .collect()
}

fn simulate(
    params: &SimParams,
    block: &BasicBlock,
    iterations: u32,
    mut timeline: Option<&mut Vec<TimelineEntry>>,
) -> u64 {
    let statics = prepare(block);
    if statics.is_empty() {
        return 0;
    }

    let dispatch_width = params.dispatch_width.max(1) as u64;
    let rob_size = params.reorder_buffer_size.max(1) as u64;

    // Producer tracking: the cycle each register family's producer issued at,
    // and that producer's write latency.
    let mut reg_issue = [0u64; RegFamily::COUNT];
    let mut reg_latency = [0u64; RegFamily::COUNT];
    // Cycle at which each execution port becomes free.
    let mut port_free = [0u64; NUM_PORTS];
    // In-flight (unretired) instructions: (retire cycle, micro-ops).
    let mut rob: std::collections::VecDeque<(u64, u64)> = std::collections::VecDeque::new();
    let mut rob_used = 0u64;
    // Dispatch slot accounting.
    let mut dispatch_cycle = 0u64;
    let mut dispatch_slots_left = dispatch_width;
    // Memory ordering: loads may not issue before earlier stores have issued.
    let mut last_store_issue = 0u64;
    // In-order retirement.
    let mut last_retire = 0u64;

    for iteration in 0..iterations {
        for (index, inst) in statics.iter().enumerate() {
            let p = params.inst(inst.opcode);
            let uops = (p.num_micro_ops.max(1) as u64).min(rob_size);

            // Free reorder buffer space (instructions retire in order).
            let mut rob_free_cycle = 0u64;
            while rob_used + uops > rob_size {
                match rob.pop_front() {
                    Some((retire, n)) => {
                        rob_used -= n;
                        rob_free_cycle = retire;
                    }
                    None => break,
                }
            }

            // Dispatch the instruction's micro-ops, dispatch_width per cycle.
            if rob_free_cycle > dispatch_cycle {
                dispatch_cycle = rob_free_cycle;
                dispatch_slots_left = dispatch_width;
            }
            let mut remaining = uops;
            loop {
                if dispatch_slots_left == 0 {
                    dispatch_cycle += 1;
                    dispatch_slots_left = dispatch_width;
                }
                let take = remaining.min(dispatch_slots_left);
                dispatch_slots_left -= take;
                remaining -= take;
                if remaining == 0 {
                    break;
                }
            }
            let dispatch_done = dispatch_cycle;

            // Source operands: producer issue cycle + max(0, latency - read advance).
            let mut operands_ready = 0u64;
            for (k, family) in inst.reads.iter().enumerate() {
                let advance = p.read_advance_cycles[k.min(NUM_READ_ADVANCE - 1)] as u64;
                let latency = reg_latency[family.index()].saturating_sub(advance);
                let ready = reg_issue[family.index()] + latency;
                operands_ready = operands_ready.max(ready);
            }
            if inst.loads {
                operands_ready = operands_ready.max(last_store_issue);
            }

            // Execution port availability.
            let mut ports_ready = 0u64;
            for (port, &cycles) in p.port_map.iter().enumerate() {
                if cycles > 0 {
                    ports_ready = ports_ready.max(port_free[port]);
                }
            }

            let issue = dispatch_done.max(operands_ready).max(ports_ready);

            // Reserve ports.
            let mut max_port_cycles = 0u64;
            for (port, &cycles) in p.port_map.iter().enumerate() {
                if cycles > 0 {
                    port_free[port] = issue + cycles as u64;
                    max_port_cycles = max_port_cycles.max(cycles as u64);
                }
            }

            let write_latency = p.write_latency as u64;
            let execute_end = issue + write_latency.max(max_port_cycles).max(1);

            // Publish results for dependents.
            for family in &inst.writes {
                reg_issue[family.index()] = issue;
                reg_latency[family.index()] = write_latency;
            }
            if inst.stores {
                last_store_issue = last_store_issue.max(issue);
            }

            // In-order retirement.
            let retire = execute_end.max(last_retire);
            last_retire = retire;
            rob.push_back((retire, uops));
            rob_used += uops;

            if let Some(entries) = timeline.as_deref_mut() {
                entries.push(TimelineEntry {
                    iteration,
                    index,
                    dispatch: dispatch_done,
                    issue,
                    execute_end,
                    retire,
                });
            }
        }
    }

    last_retire
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::OpcodeRegistry;

    fn block(text: &str) -> BasicBlock {
        text.parse().expect("test block parses")
    }

    fn params_with(f: impl Fn(&mut SimParams)) -> SimParams {
        let mut params = SimParams::uniform_default();
        f(&mut params);
        params
    }

    #[test]
    fn empty_block_has_zero_timing() {
        let sim = McaSimulator::default();
        assert_eq!(
            sim.predict(&SimParams::uniform_default(), &BasicBlock::new()),
            0.0
        );
    }

    #[test]
    fn independent_instructions_are_throughput_bound() {
        // Four independent single-uop adds on port 0 with dispatch width 4:
        // the single port is the bottleneck, one add per cycle.
        let sim = McaSimulator::default();
        let b = block("addq %rax, %rbx\naddq %rcx, %rdx\naddq %rsi, %rdi\naddq %r8, %r9");
        let params = SimParams::uniform_default();
        let timing = sim.predict(&params, &b);
        assert!(
            (timing - 4.0).abs() < 0.2,
            "expected ~4 cycles/iter, got {timing}"
        );
    }

    #[test]
    fn spreading_port_pressure_increases_throughput() {
        // The same four adds, but alternating between two ports, halve the bound.
        let sim = McaSimulator::default();
        let b = block("addq %rax, %rbx\naddq %rcx, %rdx\naddq %rsi, %rdi\naddq %r8, %r9");
        let mut params = SimParams::uniform_default();
        let add = OpcodeRegistry::global().by_name("ADD64rr").unwrap();
        params.inst_mut(add).port_map = [1, 1, 0, 0, 0, 0, 0, 0, 0, 0];
        // A port map entry of 1 on two ports means the instruction may use
        // either port in this simplified model? No — it occupies both. Instead
        // check that lowering occupancy to two ports still only occupies each
        // for one cycle and the prediction does not increase.
        let spread = sim.predict(&params, &b);
        let baseline = sim.predict(&SimParams::uniform_default(), &b);
        assert!(spread <= baseline + 1e-9);
    }

    #[test]
    fn dependency_chain_is_latency_bound() {
        // addq %rax, %rbx ; addq %rbx, %rcx forms a chain through %rbx each
        // iteration; with latency L the chain costs ~2L cycles per iteration
        // once latency dominates.
        let sim = McaSimulator::default();
        let b = block("addq %rax, %rbx\naddq %rbx, %rcx");
        let slow = params_with(|p| {
            for inst in &mut p.per_inst {
                inst.write_latency = 3;
            }
        });
        let fast = params_with(|p| {
            for inst in &mut p.per_inst {
                inst.write_latency = 1;
            }
        });
        let slow_timing = sim.predict(&slow, &b);
        let fast_timing = sim.predict(&fast, &b);
        assert!(
            slow_timing > fast_timing * 2.0,
            "latency must lengthen the chain: {slow_timing} vs {fast_timing}"
        );
    }

    #[test]
    fn write_latency_zero_breaks_dependency_stalls() {
        // The PUSH64r case study: with WriteLatency 2 the self-chain through
        // %rsp costs ~2 cycles per push; with WriteLatency 0 the port map
        // (one cycle on one port) is the only bottleneck.
        let sim = McaSimulator::default();
        let b = block("pushq %rbx\ntestl %r8d, %r8d");
        let push = OpcodeRegistry::global().by_name("PUSH64r").unwrap();
        let test = OpcodeRegistry::global().by_name("TEST32rr").unwrap();

        let mut slow = SimParams::uniform_default();
        slow.inst_mut(push).write_latency = 2;
        slow.inst_mut(test).port_map = [0, 1, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut fast = slow.clone();
        fast.inst_mut(push).write_latency = 0;

        let slow_timing = sim.predict(&slow, &b);
        let fast_timing = sim.predict(&fast, &b);
        assert!(
            (slow_timing - 2.0).abs() < 0.2,
            "default-like parameters predict ~2 cycles, got {slow_timing}"
        );
        assert!(
            (fast_timing - 1.0).abs() < 0.2,
            "learned-like parameters predict ~1 cycle, got {fast_timing}"
        );
    }

    #[test]
    fn dispatch_width_bounds_throughput_of_wide_blocks() {
        let sim = McaSimulator::default();
        // Eight independent single-uop instructions, all on different ports.
        let b = block(
            "movq %rax, %rbx\nmovq %rcx, %rdx\nmovq %rsi, %rdi\nmovq %r8, %r9\nmovq %r10, %r11\nmovq %r12, %r13\nmovq %r14, %r15\nmovq %rax, %rcx",
        );
        let mov = OpcodeRegistry::global().by_name("MOV64rr").unwrap();
        let make = |width: u32| {
            let mut p = SimParams::uniform_default();
            p.dispatch_width = width;
            // Give each mov zero latency and spread across ports by leaving the
            // default port map; the dispatch width should dominate.
            p.inst_mut(mov).write_latency = 0;
            p.inst_mut(mov).port_map = [0; NUM_PORTS];
            p
        };
        let narrow = sim.predict(&make(1), &b);
        let wide = sim.predict(&make(8), &b);
        assert!(
            (narrow - 8.0).abs() < 0.5,
            "width 1 dispatches 8 uops in ~8 cycles, got {narrow}"
        );
        assert!(
            wide < 2.0,
            "width 8 dispatches them in ~1 cycle, got {wide}"
        );
    }

    #[test]
    fn reorder_buffer_limits_inflight_micro_ops() {
        let sim = McaSimulator::default();
        let b = block("addq %rax, %rbx\naddq %rcx, %rdx\naddq %rsi, %rdi\naddq %r8, %r9");
        let add = OpcodeRegistry::global().by_name("ADD64rr").unwrap();
        let make = |rob: u32| {
            let mut p = SimParams::uniform_default();
            p.reorder_buffer_size = rob;
            p.inst_mut(add).write_latency = 8;
            p
        };
        let tiny = sim.predict(&make(1), &b);
        let big = sim.predict(&make(256), &b);
        assert!(
            tiny > big,
            "a one-entry reorder buffer must serialize execution: {tiny} vs {big}"
        );
    }

    #[test]
    fn trace_matches_prediction_and_is_ordered() {
        let sim = McaSimulator::new(10);
        let b = block("addq %rax, %rbx\naddq %rbx, %rcx\nmovq %rcx, 8(%rsp)");
        let params = SimParams::uniform_default();
        let timeline = sim.trace(&params, &b);
        assert_eq!(timeline.entries.len(), 3 * 10);
        assert!((timeline.cycles_per_iteration() - sim.predict(&params, &b)).abs() < 1e-9);
        for entry in &timeline.entries {
            assert!(entry.dispatch <= entry.issue);
            assert!(entry.issue < entry.execute_end);
            assert!(entry.execute_end <= entry.retire);
        }
        // Retirement is monotone (in order).
        for pair in timeline.entries.windows(2) {
            assert!(pair[0].retire <= pair[1].retire);
        }
    }

    #[test]
    fn timing_is_deterministic() {
        let sim = McaSimulator::default();
        let b = block("imulq %rbx, %rax\naddq %rax, %rcx\nmovq (%rdi), %rdx");
        let params = params_with(|p| {
            p.per_inst.iter_mut().for_each(|i| i.write_latency = 2);
        });
        assert_eq!(sim.predict(&params, &b), sim.predict(&params, &b));
    }

    #[test]
    fn more_micro_ops_never_run_faster() {
        let sim = McaSimulator::default();
        let b = block("addq %rax, %rbx\nsubq %rcx, %rdx\nxorq %rsi, %rdi");
        let few = SimParams::uniform_default();
        let many = params_with(|p| {
            for inst in &mut p.per_inst {
                inst.num_micro_ops = 6;
            }
        });
        assert!(sim.predict(&many, &b) >= sim.predict(&few, &b));
    }
}
