//! # difftune-sim
//!
//! The parameterized CPU simulators whose parameters DiffTune learns.
//!
//! Two simulators are provided, mirroring the two targets evaluated in the
//! paper:
//!
//! * [`McaSimulator`] — an llvm-mca-style instruction-level out-of-order model
//!   with dispatch, issue, execute, and retire stages, driven by the full
//!   parameter table of [`SimParams`] (`DispatchWidth`, `ReorderBufferSize`,
//!   per-opcode `NumMicroOps`, `WriteLatency`, `ReadAdvanceCycles`, `PortMap`).
//! * [`UopSimulator`] — an llvm_sim-style micro-op-level model with a modeled
//!   frontend, which consumes only `WriteLatency` and `PortMap` (interpreted as
//!   micro-ops per port), as in the paper's Appendix A.
//!
//! Both implement the [`Simulator`] trait: a pure function from a parameter
//! table and a basic block to a predicted timing (cycles per block iteration,
//! averaged over a fixed number of unrolled iterations, matching BHive's and
//! llvm-mca's definition of timing).
//!
//! # Example
//!
//! ```
//! use difftune_isa::BasicBlock;
//! use difftune_sim::{McaSimulator, SimParams, Simulator};
//!
//! let block: BasicBlock = "addq %rax, %rbx\naddq %rbx, %rcx".parse()?;
//! let params = SimParams::uniform_default();
//! let sim = McaSimulator::default();
//! let timing = sim.predict(&params, &block);
//! assert!(timing > 0.0);
//! # Ok::<(), difftune_isa::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mca;
mod params;
mod uop;

pub use mca::{McaSimulator, Timeline, TimelineEntry};
pub use params::{ParamBounds, PerInstParams, SimParams, NUM_PORTS, NUM_READ_ADVANCE};
pub use uop::UopSimulator;

use difftune_isa::BasicBlock;

/// A parameterized basic-block CPU simulator.
///
/// Implementations are deterministic pure functions: the same parameters and
/// block always produce the same predicted timing.
pub trait Simulator: std::fmt::Debug + Send + Sync {
    /// Predicts the timing of `block` in cycles per iteration (the number of
    /// cycles to execute the configured number of unrolled iterations of the
    /// block, divided by the iteration count).
    fn predict(&self, params: &SimParams, block: &BasicBlock) -> f64;

    /// Predicts the timing of every block in `blocks` under one parameter
    /// table, returning one prediction per block in order.
    ///
    /// The provided implementation fans the blocks out across all available
    /// cores (small batches stay on the calling thread), so evaluation paths
    /// that score a fixed table over a whole dataset should prefer this over
    /// a per-block [`Simulator::predict`] loop. Implementations may override
    /// it with something faster (e.g. sharing decoded state across blocks);
    /// overrides must return exactly the same values as the per-block loop.
    fn predict_batch(&self, params: &SimParams, blocks: &[BasicBlock]) -> Vec<f64> {
        // Below this many blocks the thread-spawn overhead outweighs the
        // parallelism.
        const MIN_PARALLEL: usize = 32;
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads <= 1 || blocks.len() < MIN_PARALLEL {
            return blocks.iter().map(|b| self.predict(params, b)).collect();
        }
        let chunk = blocks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || -> Vec<f64> {
                        shard.iter().map(|b| self.predict(params, b)).collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("prediction worker panicked"))
                .collect()
        })
    }

    /// A short human-readable name (`"llvm-mca"`, `"llvm_sim"`).
    fn name(&self) -> &'static str;
}
