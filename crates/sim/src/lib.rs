//! # difftune-sim
//!
//! The parameterized CPU simulators whose parameters DiffTune learns.
//!
//! Two simulators are provided, mirroring the two targets evaluated in the
//! paper:
//!
//! * [`McaSimulator`] — an llvm-mca-style instruction-level out-of-order model
//!   with dispatch, issue, execute, and retire stages, driven by the full
//!   parameter table of [`SimParams`] (`DispatchWidth`, `ReorderBufferSize`,
//!   per-opcode `NumMicroOps`, `WriteLatency`, `ReadAdvanceCycles`, `PortMap`).
//! * [`UopSimulator`] — an llvm_sim-style micro-op-level model with a modeled
//!   frontend, which consumes only `WriteLatency` and `PortMap` (interpreted as
//!   micro-ops per port), as in the paper's Appendix A.
//!
//! Both implement the [`Simulator`] trait: a pure function from a parameter
//! table and a basic block to a predicted timing (cycles per block iteration,
//! averaged over a fixed number of unrolled iterations, matching BHive's and
//! llvm-mca's definition of timing).
//!
//! # Example
//!
//! ```
//! use difftune_isa::BasicBlock;
//! use difftune_sim::{McaSimulator, SimParams, Simulator};
//!
//! let block: BasicBlock = "addq %rax, %rbx\naddq %rbx, %rcx".parse()?;
//! let params = SimParams::uniform_default();
//! let sim = McaSimulator::default();
//! let timing = sim.predict(&params, &block);
//! assert!(timing > 0.0);
//! # Ok::<(), difftune_isa::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mca;
mod params;
mod uop;

pub use mca::{McaSimulator, Timeline, TimelineEntry};
pub use params::{ParamBounds, PerInstParams, SimParams, NUM_PORTS, NUM_READ_ADVANCE};
pub use uop::UopSimulator;

use difftune_isa::BasicBlock;

/// A parameterized basic-block CPU simulator.
///
/// Implementations are deterministic pure functions: the same parameters and
/// block always produce the same predicted timing.
pub trait Simulator: std::fmt::Debug + Send + Sync {
    /// Predicts the timing of `block` in cycles per iteration (the number of
    /// cycles to execute the configured number of unrolled iterations of the
    /// block, divided by the iteration count).
    fn predict(&self, params: &SimParams, block: &BasicBlock) -> f64;

    /// A short human-readable name (`"llvm-mca"`, `"llvm_sim"`).
    fn name(&self) -> &'static str;
}
