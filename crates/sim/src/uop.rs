//! An llvm_sim-style micro-op-level simulator (paper Appendix A).
//!
//! Compared to [`crate::McaSimulator`], this model:
//!
//! * models a simple frontend that fetches and decodes a fixed number of
//!   instructions per cycle;
//! * decodes every instruction into micro-ops and dispatches the micro-ops
//!   individually, rather than simulating instructions as a whole;
//! * interprets the `PortMap` parameter as *the number of micro-ops dispatched
//!   to each port* (each micro-op occupies its port for one cycle), matching
//!   Table VII;
//! * performs register renaming with an unlimited number of physical
//!   registers, so only true (read-after-write) dependencies stall execution.
//!
//! Only `WriteLatency` and `PortMap` are read from the parameter table;
//! `NumMicroOps`, `DispatchWidth`, `ReorderBufferSize` and
//! `ReadAdvanceCycles` are ignored, as in the paper's llvm_sim experiment.

use difftune_isa::{BasicBlock, RegFamily};

use crate::params::{SimParams, NUM_PORTS};
use crate::Simulator;

/// The llvm_sim-style micro-op simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UopSimulator {
    iterations: u32,
    frontend_width: u32,
}

impl UopSimulator {
    /// Creates a simulator with the given number of unrolled iterations and
    /// frontend (fetch/decode) width in instructions per cycle.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(iterations: u32, frontend_width: u32) -> Self {
        assert!(iterations > 0, "iteration count must be positive");
        assert!(frontend_width > 0, "frontend width must be positive");
        UopSimulator {
            iterations,
            frontend_width,
        }
    }

    /// The number of unrolled iterations used for each prediction.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// The modeled frontend width in instructions per cycle.
    pub fn frontend_width(&self) -> u32 {
        self.frontend_width
    }
}

impl Default for UopSimulator {
    /// 100 iterations with a four-wide frontend (the Haswell decode width).
    fn default() -> Self {
        UopSimulator::new(100, 4)
    }
}

impl Simulator for UopSimulator {
    fn predict(&self, params: &SimParams, block: &BasicBlock) -> f64 {
        if block.is_empty() {
            return 0.0;
        }
        let total = simulate(params, block, self.iterations, self.frontend_width);
        total as f64 / self.iterations as f64
    }

    fn name(&self) -> &'static str {
        "llvm_sim"
    }
}

struct StaticInst {
    reads: Vec<RegFamily>,
    writes: Vec<RegFamily>,
    loads: bool,
    stores: bool,
    /// Ports this instruction sends micro-ops to, one entry per micro-op.
    uop_ports: Vec<usize>,
    write_latency: u64,
}

fn prepare(params: &SimParams, block: &BasicBlock) -> Vec<StaticInst> {
    block
        .iter()
        .map(|inst| {
            let p = params.inst(inst.opcode());
            let mut uop_ports = Vec::new();
            for (port, &count) in p.port_map.iter().enumerate() {
                for _ in 0..count {
                    uop_ports.push(port);
                }
            }
            if uop_ports.is_empty() {
                // Every instruction decodes into at least one micro-op; give it
                // to port 0 so it still consumes an execution slot.
                uop_ports.push(0);
            }
            StaticInst {
                reads: inst.reads(),
                writes: inst.writes(),
                loads: inst.loads(),
                stores: inst.stores(),
                uop_ports,
                write_latency: p.write_latency as u64,
            }
        })
        .collect()
}

fn simulate(params: &SimParams, block: &BasicBlock, iterations: u32, frontend_width: u32) -> u64 {
    let statics = prepare(params, block);
    if statics.is_empty() {
        return 0;
    }
    let frontend_width = frontend_width as u64;

    let mut reg_ready = [0u64; RegFamily::COUNT];
    let mut port_free = [0u64; NUM_PORTS];
    let mut last_store_done = 0u64;
    let mut last_retire = 0u64;

    // Frontend accounting: instructions decoded per cycle.
    let mut decode_cycle = 0u64;
    let mut decode_slots_left = frontend_width;

    for _ in 0..iterations {
        for inst in &statics {
            // Frontend: fetch/decode this instruction.
            if decode_slots_left == 0 {
                decode_cycle += 1;
                decode_slots_left = frontend_width;
            }
            decode_slots_left -= 1;
            let decoded = decode_cycle;

            // True dependencies (renaming removes all false dependencies).
            let mut deps_ready = 0u64;
            for family in &inst.reads {
                deps_ready = deps_ready.max(reg_ready[family.index()]);
            }
            if inst.loads {
                deps_ready = deps_ready.max(last_store_done);
            }
            let ready = deps_ready.max(decoded);

            // Dispatch each micro-op to its port; a port executes one micro-op
            // per cycle.
            let mut last_uop_done = ready;
            for &port in &inst.uop_ports {
                let start = ready.max(port_free[port]);
                port_free[port] = start + 1;
                last_uop_done = last_uop_done.max(start + 1);
            }

            let result_ready = last_uop_done + inst.write_latency;
            for family in &inst.writes {
                reg_ready[family.index()] = result_ready;
            }
            if inst.stores {
                last_store_done = last_store_done.max(last_uop_done);
            }

            // In-order retirement once all micro-ops have executed and the
            // result is available.
            let retire = result_ready.max(last_uop_done).max(last_retire);
            last_retire = retire;
        }
    }

    last_retire
}

#[cfg(test)]
mod tests {
    use super::*;
    use difftune_isa::OpcodeRegistry;

    fn block(text: &str) -> BasicBlock {
        text.parse().expect("test block parses")
    }

    #[test]
    fn empty_block_is_zero() {
        let sim = UopSimulator::default();
        assert_eq!(
            sim.predict(&SimParams::uniform_default(), &BasicBlock::new()),
            0.0
        );
    }

    #[test]
    fn frontend_width_bounds_decode_throughput() {
        // Independent zero-latency instructions spread over four different
        // ports: with a 1-wide frontend the decode rate is the bottleneck.
        let b = block("movq %rax, %rbx\naddq %rcx, %rdx\nxorq %rsi, %rdi\nsubq %r8, %r9");
        let mut params = SimParams::uniform_default();
        let registry = OpcodeRegistry::global();
        for (name, port) in [
            ("MOV64rr", 0usize),
            ("ADD64rr", 1),
            ("XOR64rr", 2),
            ("SUB64rr", 3),
        ] {
            let id = registry.by_name(name).unwrap();
            let entry = params.inst_mut(id);
            entry.write_latency = 0;
            entry.port_map = [0; NUM_PORTS];
            entry.port_map[port] = 1;
        }
        let narrow = UopSimulator::new(100, 1).predict(&params, &b);
        let wide = UopSimulator::new(100, 8).predict(&params, &b);
        assert!(
            narrow > wide,
            "narrow frontend must be slower: {narrow} vs {wide}"
        );
        assert!(
            narrow >= 3.5,
            "1-wide frontend decodes 4 instructions in ~4 cycles, got {narrow}"
        );
    }

    #[test]
    fn port_map_counts_micro_ops() {
        // One instruction with 4 micro-ops on the same port takes ~4 cycles per
        // iteration; spread across 4 ports it takes ~1.
        let b = block("paddd %xmm1, %xmm0");
        let paddd = OpcodeRegistry::global().by_name("PADDDrr").unwrap();
        let mut same_port = SimParams::uniform_default();
        same_port.inst_mut(paddd).write_latency = 0;
        same_port.inst_mut(paddd).port_map = [4, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut spread = same_port.clone();
        spread.inst_mut(paddd).port_map = [1, 1, 1, 1, 0, 0, 0, 0, 0, 0];
        let sim = UopSimulator::default();
        let same = sim.predict(&same_port, &b);
        let wide = sim.predict(&spread, &b);
        assert!(
            same > wide * 2.0,
            "serializing micro-ops on one port must be slower: {same} vs {wide}"
        );
    }

    #[test]
    fn write_latency_lengthens_dependency_chains() {
        let b = block("addsd %xmm1, %xmm0\naddsd %xmm0, %xmm2");
        let sim = UopSimulator::default();
        let mut slow = SimParams::uniform_default();
        let mut fast = SimParams::uniform_default();
        for p in &mut slow.per_inst {
            p.write_latency = 5;
        }
        for p in &mut fast.per_inst {
            p.write_latency = 1;
        }
        assert!(sim.predict(&slow, &b) > sim.predict(&fast, &b) * 2.0);
    }

    #[test]
    fn ignores_num_micro_ops_and_rob_parameters() {
        let b = block("addq %rax, %rbx\nsubq %rcx, %rdx");
        let sim = UopSimulator::default();
        let base = SimParams::uniform_default();
        let mut tweaked = base.clone();
        tweaked.reorder_buffer_size = 1;
        tweaked.dispatch_width = 1;
        for p in &mut tweaked.per_inst {
            p.num_micro_ops = 9;
            p.read_advance_cycles = [5, 5, 5];
        }
        assert_eq!(sim.predict(&base, &b), sim.predict(&tweaked, &b));
    }

    #[test]
    fn deterministic_predictions() {
        let b = block("mulsd %xmm1, %xmm0\naddsd %xmm0, %xmm2\nmovsd %xmm2, 8(%rsp)");
        let sim = UopSimulator::default();
        let params = SimParams::uniform_default();
        assert_eq!(sim.predict(&params, &b), sim.predict(&params, &b));
    }
}
